//! A from-scratch HNSW graph (Malkov & Yashunin, TPAMI 2020), standing in
//! for ParlayANN-HNSW in the Table I comparison.
//!
//! The behaviours Table I measures: construction far slower than any
//! sampled index (every insertion runs an ef-bounded graph search),
//! sub-millisecond queries, recall around 0.9 — and single-node memory
//! residency (the dataset and graph must fit, giving the `X` cells at
//! scale). Implemented: multi-layer skip-list-of-graphs with geometric
//! level assignment, ef-bounded layer search, simple nearest-M neighbour
//! selection with reverse-link pruning.

use crate::BaselineOutcome;
use climber_series::dataset::Dataset;
use climber_series::distance::sq_ed;
use climber_series::topk::TopK;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::time::Instant;

/// HNSW parameters (the usual names).
#[derive(Debug, Clone, Copy)]
pub struct HnswConfig {
    /// Max links per node above layer 0 (layer 0 allows `2·m`).
    pub m: usize,
    /// Search breadth during construction.
    pub ef_construction: usize,
    /// Search breadth during queries.
    pub ef_search: usize,
    /// RNG seed for level assignment.
    pub seed: u64,
    /// Optional memory budget in bytes (dataset + graph).
    pub memory_budget: Option<u64>,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 100,
            ef_search: 64,
            seed: 59,
            memory_budget: None,
        }
    }
}

/// Build statistics.
#[derive(Debug, Clone, Copy)]
pub struct HnswBuildStats {
    /// Construction wall time.
    pub build_secs: f64,
    /// Estimated resident memory (dataset + graph links).
    pub memory_bytes: u64,
    /// Number of layers in the final graph.
    pub num_layers: usize,
}

/// Error when the memory budget is exceeded.
pub use crate::odyssey::OutOfMemory;

/// The HNSW graph (values live in the caller's [`Dataset`]).
#[derive(Debug)]
pub struct HnswIndex {
    config: HnswConfig,
    /// links[node][layer] = neighbour ids.
    links: Vec<Vec<Vec<u32>>>,
    /// Entry point (highest-layer node).
    entry: u32,
    /// Layers of the entry point.
    max_layer: usize,
}

impl HnswIndex {
    /// Builds the graph over `ds` by sequential insertion.
    pub fn build(ds: &Dataset, config: HnswConfig) -> Result<(Self, HnswBuildStats), OutOfMemory> {
        assert!(ds.num_series() > 0, "cannot index an empty dataset");
        assert!(config.m >= 2, "m must be at least 2");
        let t0 = Instant::now();
        let payload = ds.payload_bytes() as u64;
        if let Some(budget) = config.memory_budget {
            if payload > budget {
                return Err(OutOfMemory {
                    required: payload,
                    budget,
                });
            }
        }

        let n = ds.num_series();
        let ml = 1.0 / (config.m as f64).ln();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut index = HnswIndex {
            config,
            links: Vec::with_capacity(n),
            entry: 0,
            max_layer: 0,
        };
        for id in 0..n as u32 {
            let level = sample_level(&mut rng, ml);
            index.insert(ds, id, level);
        }

        let link_bytes: u64 = index
            .links
            .iter()
            .flat_map(|layers| layers.iter().map(|l| 24 + l.len() as u64 * 4))
            .sum();
        let memory_bytes = payload + link_bytes;
        if let Some(budget) = index.config.memory_budget {
            if memory_bytes > budget {
                return Err(OutOfMemory {
                    required: memory_bytes,
                    budget,
                });
            }
        }
        let stats = HnswBuildStats {
            build_secs: t0.elapsed().as_secs_f64(),
            memory_bytes,
            num_layers: index.max_layer + 1,
        };
        Ok((index, stats))
    }

    fn insert(&mut self, ds: &Dataset, id: u32, level: usize) {
        self.links.push(vec![Vec::new(); level + 1]);
        if id == 0 {
            self.entry = 0;
            self.max_layer = level;
            return;
        }
        let q = ds.get(id as u64);
        let mut ep = self.entry;
        // Greedy descent through layers above the node's level.
        for layer in ((level + 1)..=self.max_layer).rev() {
            ep = self.greedy_closest(ds, q, ep, layer);
        }
        // ef-bounded search and linking from min(level, max_layer) down.
        for layer in (0..=level.min(self.max_layer)).rev() {
            let cands = self.search_layer(ds, q, ep, layer, self.config.ef_construction);
            ep = cands.first().map(|&(_, id)| id).unwrap_or(ep);
            let m_max = if layer == 0 {
                self.config.m * 2
            } else {
                self.config.m
            };
            let selected: Vec<u32> = cands
                .iter()
                .take(self.config.m)
                .map(|&(_, nid)| nid)
                .collect();
            self.links[id as usize][layer] = selected.clone();
            for nid in selected {
                let nl = &mut self.links[nid as usize][layer];
                nl.push(id);
                if nl.len() > m_max {
                    // prune the farthest reverse link
                    let base = ds.get(nid as u64);
                    let mut scored: Vec<(f64, u32)> = nl
                        .iter()
                        .map(|&x| (sq_ed(base, ds.get(x as u64)), x))
                        .collect();
                    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                    scored.truncate(m_max);
                    *nl = scored.into_iter().map(|(_, x)| x).collect();
                }
            }
        }
        if level > self.max_layer {
            self.max_layer = level;
            self.entry = id;
        }
    }

    /// One greedy step-descent on a layer: walk to the closest neighbour
    /// until no improvement.
    fn greedy_closest(&self, ds: &Dataset, q: &[f32], start: u32, layer: usize) -> u32 {
        let mut cur = start;
        let mut cur_d = sq_ed(q, ds.get(cur as u64));
        loop {
            let mut improved = false;
            for &nb in &self.links[cur as usize][layer.min(self.links[cur as usize].len() - 1)] {
                let d = sq_ed(q, ds.get(nb as u64));
                if d < cur_d {
                    cur = nb;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// ef-bounded best-first search on one layer; returns up to `ef`
    /// `(dist, id)` pairs ascending.
    fn search_layer(
        &self,
        ds: &Dataset,
        q: &[f32],
        entry: u32,
        layer: usize,
        ef: usize,
    ) -> Vec<(f64, u32)> {
        let d0 = sq_ed(q, ds.get(entry as u64));
        let mut visited: HashSet<u32> = HashSet::from([entry]);
        // candidates: min-heap by distance
        let mut candidates: BinaryHeap<(Reverse<Of64>, u32)> =
            BinaryHeap::from([(Reverse(Of64(d0)), entry)]);
        // best: max-heap (worst on top) bounded to ef
        let mut best: BinaryHeap<(Of64, u32)> = BinaryHeap::from([(Of64(d0), entry)]);
        while let Some((Reverse(Of64(cd)), cid)) = candidates.pop() {
            let worst = best.peek().map(|&(Of64(d), _)| d).unwrap_or(f64::INFINITY);
            if cd > worst && best.len() >= ef {
                break;
            }
            if layer < self.links[cid as usize].len() {
                for &nb in &self.links[cid as usize][layer] {
                    if !visited.insert(nb) {
                        continue;
                    }
                    let d = sq_ed(q, ds.get(nb as u64));
                    let worst = best.peek().map(|&(Of64(w), _)| w).unwrap_or(f64::INFINITY);
                    if best.len() < ef || d < worst {
                        candidates.push((Reverse(Of64(d)), nb));
                        best.push((Of64(d), nb));
                        if best.len() > ef {
                            best.pop();
                        }
                    }
                }
            }
        }
        let mut out: Vec<(f64, u32)> = best.into_iter().map(|(Of64(d), id)| (d, id)).collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    }

    /// Approximate kNN query with breadth `max(ef_search, k)`.
    pub fn query(&self, ds: &Dataset, query: &[f32], k: usize) -> BaselineOutcome {
        assert!(k > 0, "k must be positive");
        let mut ep = self.entry;
        for layer in (1..=self.max_layer).rev() {
            ep = self.greedy_closest(ds, query, ep, layer);
        }
        let ef = self.config.ef_search.max(k);
        let found = self.search_layer(ds, query, ep, 0, ef);
        let scanned = found.len() as u64; // distance evaluations retained
        let mut top = TopK::new(k);
        for (d, id) in found {
            top.offer(id as u64, d);
        }
        BaselineOutcome {
            results: top.into_sorted(),
            records_scanned: scanned,
            partitions_opened: 0,
        }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.max_layer + 1
    }
}

fn sample_level(rng: &mut StdRng, ml: f64) -> usize {
    let u: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
    ((-u.ln()) * ml).floor() as usize
}

/// f64 with total order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Of64(f64);
impl Eq for Of64 {}
impl PartialOrd for Of64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Of64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use climber_series::gen::Domain;
    use climber_series::ground_truth::exact_knn;
    use climber_series::recall::recall_of_results;

    fn cfg() -> HnswConfig {
        HnswConfig {
            m: 8,
            ef_construction: 64,
            ef_search: 48,
            seed: 61,
            memory_budget: None,
        }
    }

    #[test]
    fn high_recall_on_clustered_data() {
        let ds = Domain::TexMex.generate(1000, 63);
        let (index, _) = HnswIndex::build(&ds, cfg()).unwrap();
        let k = 10;
        let mut r = 0.0;
        for qid in (0..20u64).map(|i| i * 49) {
            let got = index.query(&ds, ds.get(qid), k);
            let want = exact_knn(&ds, ds.get(qid), k);
            r += recall_of_results(&got.results, &want);
        }
        r /= 20.0;
        assert!(r > 0.8, "HNSW recall {r:.3} too low");
    }

    #[test]
    fn self_query_finds_itself() {
        let ds = Domain::RandomWalk.generate(400, 65);
        let (index, _) = HnswIndex::build(&ds, cfg()).unwrap();
        for qid in [0u64, 200, 399] {
            let out = index.query(&ds, ds.get(qid), 5);
            assert_eq!(out.results[0].0, qid, "query {qid}");
            assert_eq!(out.results[0].1, 0.0);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let ds = Domain::Eeg.generate(200, 67);
        let (a, _) = HnswIndex::build(&ds, cfg()).unwrap();
        let (b, _) = HnswIndex::build(&ds, cfg()).unwrap();
        assert_eq!(a.links, b.links);
        assert_eq!(a.entry, b.entry);
    }

    #[test]
    fn memory_budget_cliff() {
        let ds = Domain::Dna.generate(300, 69);
        let payload = ds.payload_bytes() as u64;
        assert!(HnswIndex::build(
            &ds,
            HnswConfig {
                memory_budget: Some(payload / 2),
                ..cfg()
            }
        )
        .is_err());
        assert!(HnswIndex::build(
            &ds,
            HnswConfig {
                memory_budget: Some(payload * 8),
                ..cfg()
            }
        )
        .is_ok());
    }

    #[test]
    fn queries_scan_a_fraction_of_the_dataset() {
        let ds = Domain::TexMex.generate(2000, 71);
        let (index, _) = HnswIndex::build(&ds, cfg()).unwrap();
        let out = index.query(&ds, ds.get(3), 10);
        assert!(out.records_scanned < 500, "scanned {}", out.records_scanned);
    }

    #[test]
    fn layers_are_geometric() {
        let ds = Domain::RandomWalk.generate(2000, 73);
        let (index, stats) = HnswIndex::build(&ds, cfg()).unwrap();
        assert!(index.num_layers() >= 2, "graph degenerated to one layer");
        assert!(stats.num_layers < 12, "implausibly tall graph");
    }
}
