//! A DPiSAX-like distributed iSAX index (Yagoubi et al., ICDM 2017).
//!
//! DPiSAX samples the dataset, builds a *partition table* by recursively
//! splitting the iSAX space one bit at a time (round-robin over segments,
//! the iSAX 2.0 discipline) until every partition is balanced, then
//! re-distributes all records into those partitions. An approximate kNN
//! query navigates its iSAX word to exactly **one** partition and refines
//! with ED inside it — the single-partition restriction the CLIMBER paper
//! identifies as the accuracy bottleneck (§VII-B).

use crate::BaselineOutcome;
use climber_dfs::format::PartitionWriter;
use climber_dfs::store::{PartitionId, PartitionStore};
use climber_repr::isax::ISaxWord;
use climber_repr::paa::paa;
use climber_series::dataset::Dataset;
use climber_series::distance::ed_early_abandon;
use climber_series::sampling::{partition_level_sample, partitions_for_alpha};
use climber_series::topk::TopK;
use std::collections::HashMap;
use std::time::Instant;

/// DPiSAX build parameters.
#[derive(Debug, Clone, Copy)]
pub struct DpisaxConfig {
    /// iSAX word length `w` (PAA segments).
    pub segments: usize,
    /// Full-resolution bits per segment.
    pub max_bits: u8,
    /// Partition capacity in records.
    pub capacity: u64,
    /// Sampling fraction for the partition table.
    pub alpha: f64,
    /// RNG seed for sampling.
    pub seed: u64,
}

impl Default for DpisaxConfig {
    fn default() -> Self {
        Self {
            segments: 16,
            max_bits: 8,
            capacity: 2_000,
            alpha: 0.1,
            seed: 17,
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    /// Number of split bits from the root (segment `depth % w` is examined
    /// at bit level `depth / w`).
    depth: u32,
    /// Estimated records below this node.
    count: u64,
    /// Children for next-bit 0 / 1.
    children: Option<(u32, u32)>,
    /// Leaf partition.
    partition: Option<PartitionId>,
}

/// Build statistics (Figure 8 metrics).
#[derive(Debug, Clone, Copy)]
pub struct DpisaxBuildStats {
    /// Total construction wall time.
    pub build_secs: f64,
    /// Partitions created.
    pub num_partitions: usize,
    /// Serialised size of the global partition table in bytes.
    pub index_bytes: usize,
}

/// The in-memory global partition table.
#[derive(Debug, Clone)]
pub struct DpisaxIndex {
    config: DpisaxConfig,
    nodes: Vec<Node>,
}

impl DpisaxIndex {
    /// Builds the index over `ds`, writing partitions to `store`.
    pub fn build<S: PartitionStore>(
        ds: &Dataset,
        store: &S,
        config: DpisaxConfig,
    ) -> (Self, DpisaxBuildStats) {
        assert!(ds.num_series() > 0, "cannot index an empty dataset");
        assert!(config.segments <= ds.series_len(), "too many segments");
        let t0 = Instant::now();

        // Partition-level sample (same regime as the other systems).
        let n = ds.num_series();
        let chunk = (config.capacity as usize).min(n).max(1);
        let chunks = n.div_ceil(chunk);
        let take = partitions_for_alpha(chunks, config.alpha);
        let picked = partition_level_sample(chunks, take, config.seed);
        let mut sample_words: Vec<ISaxWord> = Vec::new();
        for c in picked {
            for id in (c * chunk)..((c + 1) * chunk).min(n) {
                sample_words.push(word_of(ds.get(id as u64), &config));
            }
        }
        let scale = n as f64 / sample_words.len().max(1) as f64;

        // Recursive binary splitting of the iSAX space.
        let mut index = DpisaxIndex {
            config,
            nodes: vec![Node {
                depth: 0,
                count: (sample_words.len() as f64 * scale) as u64,
                children: None,
                partition: None,
            }],
        };
        let word_refs: Vec<&ISaxWord> = sample_words.iter().collect();
        index.split(0, word_refs, scale);

        // Assign partition ids to leaves.
        let mut next_pid: PartitionId = 0;
        for i in 0..index.nodes.len() {
            if index.nodes[i].children.is_none() {
                index.nodes[i].partition = Some(next_pid);
                next_pid += 1;
            }
        }

        // Re-distribute the full dataset.
        let mut buckets: HashMap<PartitionId, Vec<u64>> = HashMap::new();
        for id in 0..n as u64 {
            let w = word_of(ds.get(id), &index.config);
            let pid = index.route(&w);
            buckets.entry(pid).or_default().push(id);
        }
        for pid in 0..next_pid {
            let mut writer = PartitionWriter::new(u64::MAX, ds.series_len());
            let empty = Vec::new();
            let ids = buckets.get(&pid).unwrap_or(&empty);
            writer.push_cluster(pid as u64, ids.iter().map(|&id| (id, ds.get(id))));
            store.put(pid, writer.finish()).expect("partition write");
        }

        let stats = DpisaxBuildStats {
            build_secs: t0.elapsed().as_secs_f64(),
            num_partitions: next_pid as usize,
            index_bytes: index.size_bytes(),
        };
        (index, stats)
    }

    fn split(&mut self, node: u32, words: Vec<&ISaxWord>, scale: f64) {
        let depth = self.nodes[node as usize].depth;
        let est = self.nodes[node as usize].count;
        let max_depth = (self.config.segments as u32) * (self.config.max_bits as u32);
        if est <= self.config.capacity || depth >= max_depth || words.len() <= 1 {
            return;
        }
        let (zeros, ones): (Vec<&ISaxWord>, Vec<&ISaxWord>) =
            words.into_iter().partition(|w| self.bit_of(w, depth) == 0);
        let mk = |depth: u32, len: usize| Node {
            depth,
            count: (len as f64 * scale) as u64,
            children: None,
            partition: None,
        };
        let zero_idx = self.nodes.len() as u32;
        self.nodes.push(mk(depth + 1, zeros.len()));
        let one_idx = self.nodes.len() as u32;
        self.nodes.push(mk(depth + 1, ones.len()));
        self.nodes[node as usize].children = Some((zero_idx, one_idx));
        self.split(zero_idx, zeros, scale);
        self.split(one_idx, ones, scale);
    }

    /// The bit examined at split depth `d`: segment `d % w`, bit level
    /// `d / w` (most significant first).
    fn bit_of(&self, word: &ISaxWord, depth: u32) -> u8 {
        let w = self.config.segments as u32;
        let seg = (depth % w) as usize;
        let level = (depth / w) as u8;
        let sym = word.symbols[seg];
        debug_assert!(level < self.config.max_bits);
        ((sym.symbol >> (self.config.max_bits - 1 - level)) & 1) as u8
    }

    /// Routes a full-resolution word to its leaf partition.
    pub fn route(&self, word: &ISaxWord) -> PartitionId {
        let mut idx = 0u32;
        loop {
            let node = &self.nodes[idx as usize];
            match node.children {
                None => return node.partition.expect("leaf has partition"),
                Some((zero, one)) => {
                    idx = if self.bit_of(word, node.depth) == 0 {
                        zero
                    } else {
                        one
                    };
                }
            }
        }
    }

    /// Single-partition approximate kNN query.
    pub fn query<S: PartitionStore>(&self, store: &S, query: &[f32], k: usize) -> BaselineOutcome {
        assert!(k > 0, "k must be positive");
        let w = word_of(query, &self.config);
        let pid = self.route(&w);
        let mut top = TopK::new(k);
        let mut scanned = 0u64;
        let mut out = Vec::new();
        if store.read_cluster(pid, pid as u64, &mut out).is_ok() {
            for (id, vals) in &out {
                scanned += 1;
                if let Some(d) = ed_early_abandon(query, vals, top.bound()) {
                    top.offer(*id, d);
                }
            }
        }
        BaselineOutcome {
            results: top.into_sorted(),
            records_scanned: scanned,
            partitions_opened: 1,
        }
    }

    /// Number of nodes in the partition table.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf partitions.
    pub fn num_partitions(&self) -> usize {
        self.nodes.iter().filter(|n| n.children.is_none()).count()
    }

    /// Serialised size of the table: a node is (depth u32, count u64,
    /// children 2×u32 or partition u32 + tag).
    pub fn size_bytes(&self) -> usize {
        self.nodes.len() * (4 + 8 + 1 + 8)
    }
}

fn word_of(values: &[f32], cfg: &DpisaxConfig) -> ISaxWord {
    ISaxWord::from_paa(&paa(values, cfg.segments), cfg.max_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use climber_dfs::store::MemStore;
    use climber_series::gen::Domain;
    use climber_series::ground_truth::exact_knn;
    use climber_series::recall::recall_of_results;

    fn cfg() -> DpisaxConfig {
        DpisaxConfig {
            segments: 8,
            max_bits: 6,
            capacity: 50,
            alpha: 0.5,
            seed: 3,
        }
    }

    #[test]
    fn every_record_stored_exactly_once() {
        let ds = Domain::RandomWalk.generate(300, 7);
        let store = MemStore::new();
        let (_, stats) = DpisaxIndex::build(&ds, &store, cfg());
        let mut seen = Vec::new();
        for pid in store.ids() {
            store.open(pid).unwrap().for_each(|id, _| seen.push(id));
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..300u64).collect::<Vec<_>>());
        assert!(stats.num_partitions > 1);
    }

    #[test]
    fn routing_is_consistent_with_storage() {
        let ds = Domain::Eeg.generate(200, 9);
        let store = MemStore::new();
        let (index, _) = DpisaxIndex::build(&ds, &store, cfg());
        for pid in store.ids() {
            store.open(pid).unwrap().for_each(|id, vals| {
                let w = word_of(vals, &cfg());
                assert_eq!(index.route(&w), pid, "record {id}");
            });
        }
    }

    #[test]
    fn query_touches_one_partition() {
        let ds = Domain::TexMex.generate(300, 11);
        let store = MemStore::new();
        let (index, _) = DpisaxIndex::build(&ds, &store, cfg());
        let out = index.query(&store, ds.get(5), 10);
        assert_eq!(out.partitions_opened, 1);
        assert!(out.records_scanned <= 300);
        assert!(!out.results.is_empty());
    }

    #[test]
    fn self_query_finds_itself() {
        let ds = Domain::Dna.generate(250, 13);
        let store = MemStore::new();
        let (index, _) = DpisaxIndex::build(&ds, &store, cfg());
        // the query record routes to the partition that stores it
        let mut hits = 0;
        for qid in [1u64, 50, 120, 249] {
            let out = index.query(&store, ds.get(qid), 5);
            if out.results.iter().any(|&(id, d)| id == qid && d == 0.0) {
                hits += 1;
            }
        }
        assert_eq!(hits, 4, "routing must be deterministic for stored records");
    }

    #[test]
    fn recall_is_positive_but_modest() {
        // the point of this baseline: single-partition iSAX search recalls
        // far less than scanning everything
        let ds = Domain::RandomWalk.generate(800, 15);
        let store = MemStore::new();
        let (index, _) = DpisaxIndex::build(&ds, &store, cfg());
        let k = 20;
        let mut r = 0.0;
        for qid in (0..16u64).map(|i| i * 50) {
            let exact = exact_knn(&ds, ds.get(qid), k);
            let out = index.query(&store, ds.get(qid), k);
            r += recall_of_results(&out.results, &exact);
        }
        r /= 16.0;
        assert!(r > 0.0, "recall must be non-zero");
        assert!(r < 0.95, "single-partition search should not be near-exact");
    }

    #[test]
    fn balanced_splitting_bounds_partition_sizes() {
        let ds = Domain::RandomWalk.generate(1000, 21);
        let store = MemStore::new();
        let c = DpisaxConfig {
            capacity: 100,
            alpha: 1.0,
            ..cfg()
        };
        let (_, stats) = DpisaxIndex::build(&ds, &store, c);
        assert!(stats.num_partitions >= 10);
        let mut oversized = 0;
        for pid in store.ids() {
            if store.open(pid).unwrap().record_count() > 2 * 100 {
                oversized += 1;
            }
        }
        assert!(
            oversized <= stats.num_partitions / 4,
            "{oversized} grossly oversized partitions"
        );
    }

    #[test]
    fn index_size_grows_with_nodes() {
        let ds = Domain::Eeg.generate(400, 23);
        let store = MemStore::new();
        let (index, stats) = DpisaxIndex::build(&ds, &store, cfg());
        assert_eq!(stats.index_bytes, index.size_bytes());
        assert!(index.num_nodes() >= 2 * index.num_partitions() - 1);
    }
}
