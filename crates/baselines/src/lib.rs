//! # climber-baselines
//!
//! The comparison systems of the paper's evaluation (§VII), implemented
//! from scratch at the same scale as the CLIMBER reproduction:
//!
//! * [`dss`] — **Dss**, the distributed sequential scan producing exact
//!   answers (the ground-truth baseline of Figures 7 and 9);
//! * [`dpisax`] — a **DPiSAX**-like distributed iSAX index: sampled binary
//!   splitting of the iSAX space into balanced partitions, single-partition
//!   approximate queries;
//! * [`tardis`] — a **TARDIS**-like sigTree: a wide n-ary tree refining the
//!   *whole word's* cardinality level by level, leaves packed into
//!   partitions, single-partition approximate queries;
//! * [`odyssey`] — an **Odyssey**-like in-memory exact engine (iSAX tree +
//!   mindist best-first pruning) with a configurable memory budget, for the
//!   Table I comparison;
//! * [`hnsw`] — a from-scratch **HNSW** graph standing in for
//!   ParlayANN-HNSW in Table I;
//! * [`lsh`] — a **ChainLink**-like signed-random-projection LSH index,
//!   reproducing the ~30%-recall failure mode §II cites.

pub mod dpisax;
pub mod dss;
pub mod hnsw;
pub mod lsh;
pub mod odyssey;
pub mod tardis;

use climber_series::series::SeriesId;

/// Common result shape for every baseline query.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineOutcome {
    /// Approximate (or exact) answers: `(series id, squared ED)` ascending.
    pub results: Vec<(SeriesId, f64)>,
    /// Records compared against the query.
    pub records_scanned: u64,
    /// Partitions opened (0 for purely in-memory engines).
    pub partitions_opened: usize,
}
