//! A TARDIS-like sigTree index (Zhang et al., ICDE 2019).
//!
//! TARDIS builds a wide n-ary *sigTree* over iSAX words: unlike the iSAX
//! binary tree (which promotes one segment at a time), each sigTree level
//! refines the cardinality of **every** segment by one bit, giving a fanout
//! of up to `2^w` populated children per node. Leaves are packed into
//! storage partitions. An approximate kNN query descends by word match
//! (falling back to the mindist-nearest child when its exact word is
//! absent), lands on one leaf, and refines inside that leaf's partition —
//! again the single-partition search the CLIMBER paper contrasts with.

use crate::BaselineOutcome;
use climber_dfs::format::PartitionWriter;
use climber_dfs::store::{PartitionId, PartitionStore};
use climber_index::packing::first_fit_decreasing;
use climber_repr::isax::ISaxWord;
use climber_repr::paa::paa;
use climber_series::dataset::Dataset;
use climber_series::distance::ed_early_abandon;
use climber_series::sampling::{partition_level_sample, partitions_for_alpha};
use climber_series::topk::TopK;
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

/// sigTree build parameters.
#[derive(Debug, Clone, Copy)]
pub struct TardisConfig {
    /// Word length `w` (PAA segments). sigTrees prefer short words.
    pub segments: usize,
    /// Maximum bits per segment (tree depth bound).
    pub max_bits: u8,
    /// Partition capacity in records.
    pub capacity: u64,
    /// Sampling fraction for skeleton construction.
    pub alpha: f64,
    /// RNG seed for sampling.
    pub seed: u64,
}

impl Default for TardisConfig {
    fn default() -> Self {
        Self {
            segments: 8,
            max_bits: 6,
            capacity: 2_000,
            alpha: 0.1,
            seed: 23,
        }
    }
}

#[derive(Debug, Clone)]
struct SigNode {
    /// Bits per segment at this node (root = 0).
    level: u8,
    /// Estimated records below.
    count: u64,
    /// Children: symbols at `level + 1` bits → node index, sorted.
    children: BTreeMap<Vec<u16>, u32>,
    /// Leaf partition after packing.
    partition: Option<PartitionId>,
}

/// Build statistics (Figure 8 metrics).
#[derive(Debug, Clone, Copy)]
pub struct TardisBuildStats {
    /// Total construction wall time.
    pub build_secs: f64,
    /// Partitions created.
    pub num_partitions: usize,
    /// Serialised global sigTree size in bytes.
    pub index_bytes: usize,
}

/// The in-memory global sigTree.
#[derive(Debug, Clone)]
pub struct TardisIndex {
    config: TardisConfig,
    nodes: Vec<SigNode>,
}

impl TardisIndex {
    /// Builds the sigTree over `ds`, writing partitions to `store`.
    pub fn build<S: PartitionStore>(
        ds: &Dataset,
        store: &S,
        config: TardisConfig,
    ) -> (Self, TardisBuildStats) {
        assert!(ds.num_series() > 0, "cannot index an empty dataset");
        let t0 = Instant::now();

        // Partition-level sample.
        let n = ds.num_series();
        let chunk = (config.capacity as usize).min(n).max(1);
        let chunks = n.div_ceil(chunk);
        let take = partitions_for_alpha(chunks, config.alpha);
        let picked = partition_level_sample(chunks, take, config.seed);
        let mut sample_words: Vec<ISaxWord> = Vec::new();
        for c in picked {
            for id in (c * chunk)..((c + 1) * chunk).min(n) {
                sample_words.push(word_of(ds.get(id as u64), &config));
            }
        }
        let scale = n as f64 / sample_words.len().max(1) as f64;

        let mut index = TardisIndex {
            config,
            nodes: vec![SigNode {
                level: 0,
                count: (sample_words.len() as f64 * scale) as u64,
                children: BTreeMap::new(),
                partition: None,
            }],
        };
        let refs: Vec<&ISaxWord> = sample_words.iter().collect();
        index.split(0, refs, scale);

        // FFD-pack leaves into partitions.
        let leaf_ids: Vec<u32> = (0..index.nodes.len() as u32)
            .filter(|&i| index.nodes[i as usize].children.is_empty())
            .collect();
        let items: Vec<(u32, u64)> = leaf_ids
            .iter()
            .map(|&i| (i, index.nodes[i as usize].count.max(1)))
            .collect();
        let bins = first_fit_decreasing(&items, config.capacity);
        for (pid, bin) in bins.iter().enumerate() {
            for &leaf in &bin.items {
                index.nodes[leaf as usize].partition = Some(pid as PartitionId);
            }
        }
        let num_partitions = bins.len();

        // Re-distribute the full dataset: records cluster under their leaf
        // node id inside the packed partition.
        let mut buckets: HashMap<PartitionId, BTreeMap<u64, Vec<u64>>> = HashMap::new();
        for id in 0..n as u64 {
            let leaf = index.descend(ds.get(id));
            let pid = index.nodes[leaf as usize].partition.expect("leaf packed");
            buckets
                .entry(pid)
                .or_default()
                .entry(leaf as u64)
                .or_default()
                .push(id);
        }
        for pid in 0..num_partitions as PartitionId {
            let mut writer = PartitionWriter::new(u64::MAX, ds.series_len());
            if let Some(clusters) = buckets.get(&pid) {
                for (node, ids) in clusters {
                    writer.push_cluster(*node, ids.iter().map(|&id| (id, ds.get(id))));
                }
            }
            store.put(pid, writer.finish()).expect("partition write");
        }

        let stats = TardisBuildStats {
            build_secs: t0.elapsed().as_secs_f64(),
            num_partitions,
            index_bytes: index.size_bytes(),
        };
        (index, stats)
    }

    fn split(&mut self, node: u32, words: Vec<&ISaxWord>, scale: f64) {
        let level = self.nodes[node as usize].level;
        let est = self.nodes[node as usize].count;
        if est <= self.config.capacity || level >= self.config.max_bits || words.len() <= 1 {
            return;
        }
        // Group members by their (level+1)-bit reduction of the whole word.
        let next = level + 1;
        let mut groups: BTreeMap<Vec<u16>, Vec<&ISaxWord>> = BTreeMap::new();
        for w in words {
            groups.entry(reduced_symbols(w, next)).or_default().push(w);
        }
        let mut children = BTreeMap::new();
        for (key, members) in groups {
            let idx = self.nodes.len() as u32;
            self.nodes.push(SigNode {
                level: next,
                count: (members.len() as f64 * scale) as u64,
                children: BTreeMap::new(),
                partition: None,
            });
            children.insert(key, idx);
            self.split(idx, members, scale);
        }
        self.nodes[node as usize].children = children;
    }

    /// Descends to the leaf for a raw series: exact word match per level,
    /// mindist-nearest child when the word is unseen.
    pub fn descend(&self, values: &[f32]) -> u32 {
        let word = word_of(values, &self.config);
        let query_paa = paa(values, self.config.segments);
        let n = values.len();
        let mut idx = 0u32;
        loop {
            let node = &self.nodes[idx as usize];
            if node.children.is_empty() {
                return idx;
            }
            let key = reduced_symbols(&word, node.level + 1);
            idx = match node.children.get(&key) {
                Some(&child) => child,
                None => {
                    // Unseen word: route to the child whose label is
                    // mindist-closest to the query PAA.
                    let bits = node.level + 1;
                    *node
                        .children
                        .iter()
                        .min_by(|(ka, _), (kb, _)| {
                            let da = label_mindist(ka, bits, &query_paa, n);
                            let db = label_mindist(kb, bits, &query_paa, n);
                            da.total_cmp(&db)
                        })
                        .map(|(_, c)| c)
                        .expect("internal node has children")
                }
            };
        }
    }

    /// Single-partition approximate kNN query: read the matched leaf's
    /// cluster; if short of `k`, expand to the other clusters packed in the
    /// same partition (never a second partition).
    pub fn query<S: PartitionStore>(&self, store: &S, query: &[f32], k: usize) -> BaselineOutcome {
        assert!(k > 0, "k must be positive");
        let leaf = self.descend(query);
        let pid = self.nodes[leaf as usize].partition.expect("leaf packed");
        let mut top = TopK::new(k);
        let mut scanned = 0u64;
        let Ok(reader) = store.open(pid) else {
            return BaselineOutcome {
                results: Vec::new(),
                records_scanned: 0,
                partitions_opened: 0,
            };
        };
        let scan_cluster = |node: u64, top: &mut TopK, scanned: &mut u64| {
            let bytes = reader.cluster_bytes(node).unwrap_or(0);
            let c = reader.for_each_in_cluster(node, |id, vals| {
                if let Some(d) = ed_early_abandon(query, vals, top.bound()) {
                    top.offer(id, d);
                }
            });
            store.stats().on_read(bytes as u64);
            store.stats().on_records_read(c);
            *scanned += c;
        };
        scan_cluster(leaf as u64, &mut top, &mut scanned);
        if top.len() < k {
            for node in reader.cluster_ids() {
                if node != leaf as u64 {
                    scan_cluster(node, &mut top, &mut scanned);
                }
                if top.len() >= k {
                    break;
                }
            }
        }
        BaselineOutcome {
            results: top.into_sorted(),
            records_scanned: scanned,
            partitions_opened: 1,
        }
    }

    /// Number of sigTree nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of packed partitions.
    pub fn num_partitions(&self) -> usize {
        let mut pids: Vec<PartitionId> = self.nodes.iter().filter_map(|n| n.partition).collect();
        pids.sort_unstable();
        pids.dedup();
        pids.len()
    }

    /// Serialised size: per node, level + count + child map entries of
    /// `w`-symbol keys (2 bytes each) + index.
    pub fn size_bytes(&self) -> usize {
        let w = self.config.segments;
        self.nodes
            .iter()
            .map(|n| 1 + 8 + 5 + n.children.len() * (2 * w + 4))
            .sum()
    }
}

fn word_of(values: &[f32], cfg: &TardisConfig) -> ISaxWord {
    ISaxWord::from_paa(&paa(values, cfg.segments), cfg.max_bits)
}

fn reduced_symbols(word: &ISaxWord, bits: u8) -> Vec<u16> {
    word.symbols
        .iter()
        .map(|s| s.reduce_to(bits).symbol)
        .collect()
}

fn label_mindist(symbols: &[u16], bits: u8, query_paa: &[f64], n: usize) -> f64 {
    use climber_repr::isax::{ISaxSymbol, ISaxWord as W};
    let word = W {
        symbols: symbols.iter().map(|&s| ISaxSymbol::new(s, bits)).collect(),
    };
    word.mindist(query_paa, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use climber_dfs::store::MemStore;
    use climber_series::gen::Domain;
    use climber_series::ground_truth::exact_knn;
    use climber_series::recall::recall_of_results;

    fn cfg() -> TardisConfig {
        TardisConfig {
            segments: 8,
            max_bits: 5,
            capacity: 60,
            alpha: 0.5,
            seed: 29,
        }
    }

    #[test]
    fn every_record_stored_exactly_once() {
        let ds = Domain::RandomWalk.generate(350, 31);
        let store = MemStore::new();
        let (_, stats) = TardisIndex::build(&ds, &store, cfg());
        let mut seen = Vec::new();
        for pid in store.ids() {
            store.open(pid).unwrap().for_each(|id, _| seen.push(id));
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..350u64).collect::<Vec<_>>());
        assert!(stats.num_partitions >= 2);
    }

    #[test]
    fn descend_is_deterministic_and_storage_consistent() {
        let ds = Domain::Eeg.generate(200, 33);
        let store = MemStore::new();
        let (index, _) = TardisIndex::build(&ds, &store, cfg());
        for qid in [0u64, 55, 199] {
            let leaf = index.descend(ds.get(qid));
            assert_eq!(leaf, index.descend(ds.get(qid)));
            let pid = index.nodes[leaf as usize].partition.unwrap();
            // record qid must be in partition pid under cluster leaf
            let mut found = false;
            store
                .open(pid)
                .unwrap()
                .for_each_in_cluster(leaf as u64, |id, _| {
                    if id == qid {
                        found = true;
                    }
                });
            assert!(found, "record {qid} not in its own leaf cluster");
        }
    }

    #[test]
    fn query_touches_one_partition_and_finds_self() {
        let ds = Domain::TexMex.generate(300, 35);
        let store = MemStore::new();
        let (index, _) = TardisIndex::build(&ds, &store, cfg());
        for qid in [2u64, 150, 299] {
            let out = index.query(&store, ds.get(qid), 5);
            assert_eq!(out.partitions_opened, 1);
            assert!(
                out.results.iter().any(|&(id, d)| id == qid && d == 0.0),
                "query {qid} did not find itself"
            );
        }
    }

    #[test]
    fn sigtree_is_wider_than_binary() {
        // The root of a sigTree refines every segment at once: fanout must
        // exceed 2 on any diverse dataset (the structural difference from
        // the DPiSAX binary split).
        let ds = Domain::RandomWalk.generate(500, 37);
        let store = MemStore::new();
        let (index, _) = TardisIndex::build(&ds, &store, cfg());
        assert!(
            index.nodes[0].children.len() > 2,
            "root fanout {} not n-ary",
            index.nodes[0].children.len()
        );
    }

    #[test]
    fn recall_is_positive_but_modest() {
        let ds = Domain::RandomWalk.generate(800, 39);
        let store = MemStore::new();
        let (index, _) = TardisIndex::build(&ds, &store, cfg());
        let k = 20;
        let mut r = 0.0;
        for qid in (0..16u64).map(|i| i * 50) {
            let exact = exact_knn(&ds, ds.get(qid), k);
            let out = index.query(&store, ds.get(qid), k);
            r += recall_of_results(&out.results, &exact);
        }
        r /= 16.0;
        assert!(r > 0.0);
        assert!(
            r < 0.95,
            "single-partition sigTree should not be near-exact"
        );
    }

    #[test]
    fn size_bytes_reported() {
        let ds = Domain::Dna.generate(200, 41);
        let store = MemStore::new();
        let (index, stats) = TardisIndex::build(&ds, &store, cfg());
        assert_eq!(stats.index_bytes, index.size_bytes());
        assert!(stats.index_bytes > 0);
        assert!(index.num_nodes() > index.nodes[0].children.len());
    }
}
