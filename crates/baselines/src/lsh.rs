//! A ChainLink-like LSH index (Alghamdi et al., ICDE 2020 — the authors'
//! own earlier system, §II).
//!
//! ChainLink sketches each series (here: PAA, as in the paper's "lossy
//! sketching techniques need to be first applied") and hashes the sketch
//! with signed random projections into `L` tables of `H`-bit buckets. A
//! query unions the colliding buckets and ED-refines the candidates. §II's
//! observation to reproduce: syntactic (hash) similarity on numeric series
//! caps recall around 30% — LSH recalls markedly less than CLIMBER at a
//! comparable candidate budget.

use crate::BaselineOutcome;
use climber_repr::paa::paa;
use climber_series::dataset::Dataset;
use climber_series::distance::ed_early_abandon;
use climber_series::gen::gauss;
use climber_series::topk::TopK;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Instant;

/// LSH parameters.
#[derive(Debug, Clone, Copy)]
pub struct LshConfig {
    /// Number of hash tables `L`.
    pub tables: usize,
    /// Bits (hyperplanes) per table `H`.
    pub bits: usize,
    /// PAA segments for the sketch.
    pub segments: usize,
    /// RNG seed for the hyperplanes.
    pub seed: u64,
}

impl Default for LshConfig {
    fn default() -> Self {
        Self {
            tables: 8,
            bits: 12,
            segments: 16,
            seed: 79,
        }
    }
}

/// Build statistics.
#[derive(Debug, Clone, Copy)]
pub struct LshBuildStats {
    /// Construction wall time.
    pub build_secs: f64,
    /// Total buckets across tables.
    pub num_buckets: usize,
}

/// The LSH index (hyperplanes + bucket tables; values stay in the caller's
/// dataset).
#[derive(Debug)]
pub struct LshIndex {
    config: LshConfig,
    /// hyperplanes[table][bit] = normal vector in PAA space.
    hyperplanes: Vec<Vec<Vec<f64>>>,
    /// tables[table][bucket hash] = record ids.
    tables: Vec<HashMap<u64, Vec<u64>>>,
}

impl LshIndex {
    /// Builds the index over `ds`.
    pub fn build(ds: &Dataset, config: LshConfig) -> (Self, LshBuildStats) {
        assert!(ds.num_series() > 0, "cannot index an empty dataset");
        assert!(config.tables > 0 && config.bits > 0, "bad LSH shape");
        assert!(config.bits <= 64, "at most 64 bits per table");
        let t0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let hyperplanes: Vec<Vec<Vec<f64>>> = (0..config.tables)
            .map(|_| {
                (0..config.bits)
                    .map(|_| (0..config.segments).map(|_| gauss(&mut rng)).collect())
                    .collect()
            })
            .collect();
        let mut index = LshIndex {
            config,
            hyperplanes,
            tables: vec![HashMap::new(); config.tables],
        };
        for id in 0..ds.num_series() as u64 {
            let sketch = paa(ds.get(id), config.segments);
            for t in 0..config.tables {
                let h = index.hash(t, &sketch);
                index.tables[t].entry(h).or_default().push(id);
            }
        }
        let stats = LshBuildStats {
            build_secs: t0.elapsed().as_secs_f64(),
            num_buckets: index.tables.iter().map(|t| t.len()).sum(),
        };
        (index, stats)
    }

    fn hash(&self, table: usize, sketch: &[f64]) -> u64 {
        let mut h = 0u64;
        for (b, plane) in self.hyperplanes[table].iter().enumerate() {
            let dot: f64 = plane.iter().zip(sketch.iter()).map(|(a, x)| a * x).sum();
            if dot >= 0.0 {
                h |= 1 << b;
            }
        }
        h
    }

    /// Approximate kNN: union of colliding buckets, ED-refined.
    pub fn query(&self, ds: &Dataset, query: &[f32], k: usize) -> BaselineOutcome {
        assert!(k > 0, "k must be positive");
        let sketch = paa(query, self.config.segments);
        let mut candidates: Vec<u64> = Vec::new();
        for t in 0..self.config.tables {
            let h = self.hash(t, &sketch);
            if let Some(bucket) = self.tables[t].get(&h) {
                candidates.extend_from_slice(bucket);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        let mut top = TopK::new(k);
        for &id in &candidates {
            if let Some(d) = ed_early_abandon(query, ds.get(id), top.bound()) {
                top.offer(id, d);
            }
        }
        BaselineOutcome {
            results: top.into_sorted(),
            records_scanned: candidates.len() as u64,
            partitions_opened: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use climber_series::gen::Domain;
    use climber_series::ground_truth::exact_knn;
    use climber_series::recall::recall_of_results;

    fn cfg() -> LshConfig {
        LshConfig::default()
    }

    #[test]
    fn self_query_finds_itself() {
        let ds = Domain::RandomWalk.generate(400, 81);
        let (index, _) = LshIndex::build(&ds, cfg());
        for qid in [0u64, 100, 399] {
            let out = index.query(&ds, ds.get(qid), 5);
            assert!(
                out.results.iter().any(|&(id, d)| id == qid && d == 0.0),
                "query {qid}: identical sketch must collide in every table"
            );
        }
    }

    #[test]
    fn candidates_are_a_subset_of_data() {
        let ds = Domain::Eeg.generate(300, 83);
        let (index, _) = LshIndex::build(&ds, cfg());
        let out = index.query(&ds, ds.get(1), 10);
        assert!(out.records_scanned <= 300);
        assert!(out.results.iter().all(|&(id, _)| id < 300));
    }

    #[test]
    fn recall_is_mediocre_by_design() {
        // §II: LSH on numeric series caps well below exact search.
        let ds = Domain::RandomWalk.generate(1500, 85);
        let (index, _) = LshIndex::build(&ds, cfg());
        let k = 20;
        let mut r = 0.0;
        let mut scanned = 0u64;
        for qid in (0..20u64).map(|i| i * 74) {
            let got = index.query(&ds, ds.get(qid), k);
            let want = exact_knn(&ds, ds.get(qid), k);
            r += recall_of_results(&got.results, &want);
            scanned += got.records_scanned;
        }
        r /= 20.0;
        assert!(r > 0.02, "LSH found nothing: {r:.3}");
        assert!(r < 0.9, "LSH should not look exact: {r:.3}");
        assert!(scanned < 20 * 1500, "LSH scanned everything");
    }

    #[test]
    fn build_is_deterministic() {
        let ds = Domain::TexMex.generate(200, 87);
        let (a, _) = LshIndex::build(&ds, cfg());
        let (b, _) = LshIndex::build(&ds, cfg());
        let qa = a.query(&ds, ds.get(9), 7);
        let qb = b.query(&ds, ds.get(9), 7);
        assert_eq!(qa, qb);
    }

    #[test]
    fn bucket_count_reported() {
        let ds = Domain::Dna.generate(250, 89);
        let (_, stats) = LshIndex::build(&ds, cfg());
        assert!(stats.num_buckets > 0);
    }

    #[test]
    #[should_panic(expected = "at most 64 bits")]
    fn oversized_hash_rejected() {
        let ds = Domain::Dna.generate(10, 91);
        LshIndex::build(&ds, LshConfig { bits: 65, ..cfg() });
    }
}
