//! Property-based tests for the baseline systems: routing consistency,
//! exactness of the exact engines, and recall bounds.

use climber_baselines::dpisax::{DpisaxConfig, DpisaxIndex};
use climber_baselines::dss::dss_query;
use climber_baselines::hnsw::{HnswConfig, HnswIndex};
use climber_baselines::lsh::{LshConfig, LshIndex};
use climber_baselines::odyssey::{OdysseyConfig, OdysseyIndex};
use climber_baselines::tardis::{TardisConfig, TardisIndex};
use climber_dfs::sample::scatter_dataset;
use climber_dfs::store::{MemStore, PartitionStore};
use climber_series::gen::{Domain, RandomWalkGenerator, SeriesGenerator};
use climber_series::ground_truth::exact_knn;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn dss_equals_ground_truth(seed in 0u64..200, qid in 0u64..150, k in 1usize..30) {
        let ds = RandomWalkGenerator::new(48).generate(150, seed);
        let store = MemStore::new();
        scatter_dataset(&store, &ds, 5);
        let got = dss_query(&store, ds.get(qid % 150), k);
        let want = exact_knn(&ds, ds.get(qid % 150), k);
        prop_assert_eq!(got.results, want);
    }

    #[test]
    fn odyssey_is_exact_for_any_seed(seed in 0u64..200, k in 1usize..40) {
        let ds = RandomWalkGenerator::new(48).generate(200, seed);
        let (ody, _) = OdysseyIndex::build(
            &ds,
            OdysseyConfig { segments: 8, max_bits: 5, leaf_capacity: 16, memory_budget: None },
        ).unwrap();
        let q = ds.get(seed % 200);
        let got = ody.query(&ds, q, k);
        let want = exact_knn(&ds, q, k);
        prop_assert_eq!(got.results, want);
    }

    #[test]
    fn dpisax_routing_is_total_and_consistent(seed in 0u64..100) {
        // every record must be routable and stored where routing says
        let ds = Domain::ALL[(seed % 4) as usize].generate(120, seed);
        let store = MemStore::new();
        let cfg = DpisaxConfig { segments: 8, max_bits: 5, capacity: 30, alpha: 0.5, seed };
        let (index, stats) = DpisaxIndex::build(&ds, &store, cfg);
        prop_assert!(stats.num_partitions >= 1);
        let mut total = 0u64;
        for pid in store.ids() {
            total += store.open(pid).unwrap().record_count();
        }
        prop_assert_eq!(total, 120);
        // self-query always finds itself: routing is deterministic
        let q = ds.get(seed % 120);
        let out = index.query(&store, q, 3);
        prop_assert!(out.results.iter().any(|&(id, d)| id == seed % 120 && d == 0.0));
    }

    #[test]
    fn tardis_self_queries_find_themselves(seed in 0u64..100) {
        let ds = Domain::ALL[(seed % 4) as usize].generate(120, seed ^ 7);
        let store = MemStore::new();
        let cfg = TardisConfig { segments: 8, max_bits: 4, capacity: 30, alpha: 0.5, seed };
        let (index, _) = TardisIndex::build(&ds, &store, cfg);
        let q = ds.get(seed % 120);
        let out = index.query(&store, q, 3);
        prop_assert!(out.results.iter().any(|&(id, d)| id == seed % 120 && d == 0.0));
        prop_assert_eq!(out.partitions_opened, 1);
    }

    #[test]
    fn hnsw_results_are_valid_and_sorted(seed in 0u64..60, k in 1usize..20) {
        let ds = RandomWalkGenerator::new(32).generate(120, seed);
        let (hnsw, _) = HnswIndex::build(
            &ds,
            HnswConfig { m: 6, ef_construction: 24, ef_search: 24, seed, memory_budget: None },
        ).unwrap();
        let out = hnsw.query(&ds, ds.get(seed % 120), k);
        prop_assert!(out.results.len() <= k);
        for w in out.results.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
        prop_assert!(out.results.iter().all(|&(id, _)| id < 120));
    }

    #[test]
    fn lsh_candidates_always_include_exact_duplicates(seed in 0u64..60) {
        let ds = Domain::ALL[(seed % 4) as usize].generate(100, seed);
        let (lsh, _) = LshIndex::build(
            &ds,
            LshConfig { tables: 4, bits: 10, segments: 8, seed },
        );
        // identical input hashes identically in every table
        let q = ds.get(seed % 100);
        let out = lsh.query(&ds, q, 3);
        prop_assert!(out.results.iter().any(|&(id, d)| id == seed % 100 && d == 0.0));
    }

    #[test]
    fn memory_budgets_are_monotone(seed in 0u64..30) {
        // if a build succeeds at budget B it must succeed at any B' > B
        let ds = RandomWalkGenerator::new(32).generate(100, seed);
        let payload = ds.payload_bytes() as u64;
        let mk = |budget| OdysseyIndex::build(
            &ds,
            OdysseyConfig {
                segments: 8, max_bits: 4, leaf_capacity: 16,
                memory_budget: Some(budget),
            },
        ).is_ok();
        let small = mk(payload / 4);
        let large = mk(payload * 16);
        prop_assert!(large, "generous budget must succeed");
        if small {
            prop_assert!(mk(payload / 2), "monotonicity violated");
        }
    }
}
