//! End-to-end serving tests over real sockets: micro-batching behaviour,
//! backpressure, clean shutdown, and the server/direct equivalence
//! guarantee.

use climber_core::dfs::store::PartitionStore;
use climber_core::series::gen::Domain;
use climber_core::{Climber, ClimberConfig, ClimberError, SearchRequest, ServeError};
use climber_serve::{ServeClient, ServeConfig, Server};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn build_climber(n: usize, seed: u64) -> Arc<Climber> {
    let ds = Domain::RandomWalk.generate(n, seed);
    let cfg = ClimberConfig::default()
        .with_paa_segments(8)
        .with_pivots(32)
        .with_prefix_len(5)
        .with_capacity(60)
        .with_alpha(0.5)
        .with_epsilon(1)
        .with_seed(7)
        .with_workers(2);
    Arc::new(Climber::build_in_memory(&ds, cfg))
}

fn queries_of(climber: &Climber, n: usize) -> Vec<Vec<f32>> {
    // recover probes from the store so tests need no dataset in scope
    let mut records = Vec::new();
    for pid in climber.store().ids() {
        let reader = climber.store().open(pid).unwrap();
        reader.for_each(|_, vals| records.push(vals.to_vec()));
        if records.len() >= n * 17 {
            break;
        }
    }
    records.into_iter().step_by(17).take(n).collect()
}

#[test]
fn served_outcomes_are_bit_identical_to_direct_search() {
    let climber = build_climber(400, 11);
    let server = Server::start(
        Arc::clone(&climber),
        "127.0.0.1:0",
        ServeConfig::default().with_max_delay(Duration::from_millis(5)),
    )
    .unwrap();
    let addr = server.local_addr();

    // N concurrent clients, each issuing its own stream of requests, so
    // the admission queue actually coalesces cross-connection batches.
    let queries = queries_of(&climber, 12);
    let handles: Vec<_> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let q = q.clone();
            thread::spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                let req = match i % 3 {
                    0 => SearchRequest::new(q, 10),
                    1 => SearchRequest::new(q, 5).exact(),
                    _ => SearchRequest::new(q, 20).adaptive(2).with_budget(4),
                };
                let outcome = client.search(&req).unwrap();
                (req, outcome)
            })
        })
        .collect();
    for h in handles {
        let (req, served) = h.join().unwrap();
        let direct = climber.search(&req);
        assert_eq!(served, direct, "served outcome diverged for {req:?}");
    }

    let stats = server.stats();
    assert_eq!(stats.admitted, 12);
    assert_eq!(stats.completed, 12);
    assert!(stats.p50_us > 0);
    server.shutdown();
}

#[test]
fn micro_batches_coalesce_concurrent_clients() {
    let climber = build_climber(300, 13);
    // One worker + a generous deadline: concurrent requests pile up in the
    // queue and must flush as multi-request batches.
    let server = Server::start(
        Arc::clone(&climber),
        "127.0.0.1:0",
        ServeConfig::default()
            .with_workers(1)
            .with_max_batch(64)
            .with_max_delay(Duration::from_millis(40)),
    )
    .unwrap();
    let addr = server.local_addr();
    let queries = queries_of(&climber, 10);
    let handles: Vec<_> = queries
        .into_iter()
        .map(|q| {
            thread::spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                client.search(&SearchRequest::new(q, 5)).unwrap()
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = server.stats();
    assert_eq!(stats.completed, 10);
    assert!(
        stats.mean_batch > 1.0,
        "no coalescing: mean batch occupancy {}",
        stats.mean_batch
    );
    server.shutdown();
}

#[test]
fn bad_requests_get_a_typed_response_not_a_dead_connection() {
    let climber = build_climber(200, 17);
    let server =
        Server::start(Arc::clone(&climber), "127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    let err = client
        .search(&SearchRequest::new(vec![1.0f32], 0))
        .unwrap_err();
    assert!(
        matches!(err, ClimberError::Serve(ServeError::BadRequest(_))),
        "{err:?}"
    );
    // the connection survives and serves a valid follow-up
    let q = queries_of(&climber, 1).remove(0);
    let ok = client.search(&SearchRequest::new(q, 3)).unwrap();
    assert_eq!(ok.results.len(), 3);
    assert_eq!(server.stats().rejected, 1);
    server.shutdown();
}

#[test]
fn overload_rejects_with_backpressure_instead_of_hanging() {
    let climber = build_climber(200, 19);
    // A tiny queue and a worker pool throttled by a huge deadline & batch:
    // with max_batch never reached and the deadline far away, submissions
    // accumulate and the bound must trip.
    let server = Server::start(
        Arc::clone(&climber),
        "127.0.0.1:0",
        ServeConfig::default()
            .with_workers(1)
            .with_max_batch(1000)
            .with_max_delay(Duration::from_secs(5))
            .with_queue_cap(2),
    )
    .unwrap();
    let addr = server.local_addr();
    let q = queries_of(&climber, 1).remove(0);

    // Two requests park in the queue (waiting out the 5 s deadline)...
    let parked: Vec<_> = (0..2)
        .map(|_| {
            let q = q.clone();
            thread::spawn(move || {
                let mut c = ServeClient::connect(addr).unwrap();
                c.search(&SearchRequest::new(q, 3)).map(|o| o.results.len())
            })
        })
        .collect();
    // ... wait until both are admitted ...
    let mut waited = 0;
    while waited < 2_000 {
        thread::sleep(Duration::from_millis(10));
        waited += 10;
        let s = server.stats();
        if s.queue_depth >= 2 {
            break;
        }
    }
    // ... so the third is refused immediately with the typed overload
    // response (measurably faster than the 5 s flush deadline).
    let t = std::time::Instant::now();
    let mut c = ServeClient::connect(addr).unwrap();
    let err = c.search(&SearchRequest::new(q, 3)).unwrap_err();
    assert!(
        matches!(err, ClimberError::Serve(ServeError::Overloaded)),
        "{err:?}"
    );
    assert!(
        t.elapsed() < Duration::from_secs(4),
        "overload response must not wait for the flush deadline"
    );
    // the parked requests are still answered (deadline or shutdown drain)
    server.shutdown();
    for h in parked {
        assert_eq!(h.join().unwrap().unwrap(), 3);
    }
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let climber = build_climber(250, 23);
    let server = Server::start(
        Arc::clone(&climber),
        "127.0.0.1:0",
        ServeConfig::default()
            .with_workers(1)
            .with_max_batch(1000)
            .with_max_delay(Duration::from_secs(10)),
    )
    .unwrap();
    let addr = server.local_addr();
    let queries = queries_of(&climber, 6);
    // Park several requests behind the 10 s deadline...
    let handles: Vec<_> = queries
        .into_iter()
        .map(|q| {
            thread::spawn(move || {
                let mut c = ServeClient::connect(addr).unwrap();
                c.search(&SearchRequest::new(q, 4)).map(|o| o.results.len())
            })
        })
        .collect();
    let mut waited = 0;
    while waited < 2_000 {
        thread::sleep(Duration::from_millis(10));
        waited += 10;
        if server.stats().queue_depth >= 6 {
            break;
        }
    }
    // ... then shut down: the drain must answer every one of them long
    // before the deadline would have.
    let t = std::time::Instant::now();
    server.shutdown();
    assert!(
        t.elapsed() < Duration::from_secs(8),
        "shutdown waited for the deadline"
    );
    for h in handles {
        assert_eq!(h.join().unwrap().unwrap(), 4, "in-flight request dropped");
    }
}

#[test]
fn ping_and_stats_endpoints_respond() {
    let climber = build_climber(200, 29);
    let server =
        Server::start(Arc::clone(&climber), "127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.ping().unwrap();
    let q = queries_of(&climber, 1).remove(0);
    client.search(&SearchRequest::new(q, 2)).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.completed, 1);
    assert!(stats.uptime_us > 0);
    assert!(stats.qps > 0.0);
    server.shutdown();
}
