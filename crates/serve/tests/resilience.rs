//! Serving-layer resilience over real sockets: per-request deadlines,
//! the health endpoint (healthy and degraded), client reconnect across a
//! server restart, and socket timeouts against a stalled server.

use climber_core::series::gen::Domain;
use climber_core::{
    Climber, ClimberConfig, ClimberError, RecoveryPolicy, SearchRequest, ServeError,
};
use climber_dfs::store::partition_file_name;
use climber_serve::{RetryPolicy, ServeClient, ServeConfig, Server};
use std::fs;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn build_climber(n: usize, seed: u64) -> Arc<Climber> {
    let ds = Domain::RandomWalk.generate(n, seed);
    let cfg = ClimberConfig::default()
        .with_paa_segments(8)
        .with_pivots(32)
        .with_prefix_len(5)
        .with_capacity(60)
        .with_alpha(0.5)
        .with_epsilon(1)
        .with_seed(7)
        .with_workers(2);
    Arc::new(Climber::build_in_memory(&ds, cfg))
}

fn probe_query(climber: &Climber) -> Vec<f32> {
    probe_query_from(climber, 0)
}

/// A record pulled from the index's `nth` partition, used as a query that
/// is guaranteed to have an exact-match neighbour *in that partition*.
fn probe_query_from(climber: &Climber, nth: usize) -> Vec<f32> {
    use climber_core::dfs::store::PartitionStore;
    let ids = climber.store().ids();
    let pid = ids[nth.min(ids.len() - 1)];
    let reader = climber.store().open(pid).unwrap();
    let mut q = Vec::new();
    reader.for_each(|_, vals| {
        if q.is_empty() {
            q = vals.to_vec();
        }
    });
    q
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("climber-resil-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn request_deadline_answers_typed_without_waiting_for_the_batch() {
    let climber = build_climber(200, 31);
    // One request parks behind a far-away flush deadline; the per-request
    // deadline must answer long before the queue would flush.
    let server = Server::start(
        Arc::clone(&climber),
        "127.0.0.1:0",
        ServeConfig::default()
            .with_workers(1)
            .with_max_batch(64)
            .with_max_delay(Duration::from_secs(10))
            .with_request_deadline(Some(Duration::from_millis(100))),
    )
    .unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let q = probe_query(&climber);
    let t = Instant::now();
    let err = client
        .search(&SearchRequest::new(q.clone(), 3))
        .unwrap_err();
    assert!(
        matches!(err, ClimberError::Serve(ServeError::DeadlineExceeded)),
        "{err:?}"
    );
    assert!(
        t.elapsed() < Duration::from_secs(8),
        "deadline response waited for the flush deadline"
    );
    // The typed miss is counted, the connection survives, and the same
    // request still executes once the batch engine gets to it.
    let stats = client.stats().unwrap();
    assert_eq!(stats.deadline_missed, 1);
    server.shutdown();
}

#[test]
fn health_endpoint_reports_a_healthy_backend() {
    let climber = build_climber(200, 37);
    let server =
        Server::start(Arc::clone(&climber), "127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let health = client.health().unwrap();
    assert!(health.is_healthy());
    assert_eq!(health.backend.shards, 1);
    assert_eq!(health.backend.dead_shards, 0);
    assert_eq!(health.backend.quarantined_partitions, 0);
    server.shutdown();
}

#[test]
fn degraded_open_serves_and_reports_quarantine_over_the_wire() {
    let climber = build_climber(300, 41);
    let dir = temp_dir("degraded");
    climber.save(&dir).unwrap();
    // Corrupt one committed partition, then open self-healing: the damage
    // moves to QUARANTINE/ and the index serves what validated.
    let victim = {
        use climber_core::dfs::store::PartitionStore;
        climber.store().ids()[0]
    };
    let path = dir.join(partition_file_name(victim));
    let mut bytes = fs::read(&path).unwrap();
    let at = bytes.len() / 2;
    bytes[at] ^= 0xFF;
    fs::write(&path, &bytes).unwrap();

    let (degraded, report) = Climber::open_with(&dir, RecoveryPolicy::Quarantine).unwrap();
    assert_eq!(report.quarantined_partitions, vec![victim]);
    let server = Server::start(Arc::new(degraded), "127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    let health = client.health().unwrap();
    assert!(!health.is_healthy());
    assert_eq!(health.backend.quarantined_partitions, 1);

    // Searches still answer (degraded): results come from the surviving
    // partitions only, so probe a record that lives far from the victim.
    let q = probe_query_from(&climber, usize::MAX);
    let outcome = client.search(&SearchRequest::new(q, 5)).unwrap();
    assert!(!outcome.results.is_empty());
    server.shutdown();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn client_survives_a_killed_and_restarted_server() {
    let climber = build_climber(250, 43);
    let server =
        Server::start(Arc::clone(&climber), "127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut client = ServeClient::connect(addr)
        .unwrap()
        .with_retry_policy(RetryPolicy {
            max_retries: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
        });

    let q = probe_query(&climber);
    let req = SearchRequest::new(q, 5);
    let before = client.search(&req).unwrap();

    // Kill the server. The client's TCP stream is now dead.
    server.shutdown();
    // Restart on the same port (std sets SO_REUSEADDR on Unix listeners,
    // so the lingering TIME_WAIT sockets don't block the rebind).
    let server2 = {
        let mut last = None;
        let mut restarted = None;
        for _ in 0..50 {
            match Server::start(Arc::clone(&climber), addr, ServeConfig::default()) {
                Ok(s) => {
                    restarted = Some(s);
                    break;
                }
                Err(e) => {
                    last = Some(e);
                    thread::sleep(Duration::from_millis(20));
                }
            }
        }
        restarted.unwrap_or_else(|| panic!("could not rebind {addr}: {last:?}"))
    };

    // The same client object reconnects under the hood and replays the
    // read-only request: identical answer, no duplicated work observed.
    let after = client.search(&req).unwrap();
    assert_eq!(after, before, "reconnected answer diverged");
    assert_eq!(after, climber.search(&req));
    // exactly one search reached the restarted server — the replay did
    // not double-execute a request the client already answered
    assert_eq!(server2.stats().completed, 1);
    server2.shutdown();
}

#[test]
fn client_read_timeout_bounds_a_stalled_server() {
    // A listener that accepts and then never answers.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let _stall = thread::spawn(move || {
        let conns: Vec<_> = listener.incoming().take(1).collect();
        thread::sleep(Duration::from_secs(20));
        drop(conns);
    });

    let mut client = ServeClient::connect(addr)
        .unwrap()
        .with_retry_policy(RetryPolicy {
            max_retries: 0,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(1),
        });
    client
        .set_read_timeout(Some(Duration::from_millis(150)))
        .unwrap();
    client
        .set_write_timeout(Some(Duration::from_secs(1)))
        .unwrap();
    let t = Instant::now();
    let err = client.ping().unwrap_err();
    assert!(matches!(err, ClimberError::Io(_)), "{err:?}");
    assert!(
        t.elapsed() < Duration::from_secs(10),
        "read timeout never fired"
    );
}
