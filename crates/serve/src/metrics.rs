//! Serving metrics: counters, a queue-depth gauge, and a lock-free
//! log-bucketed latency histogram with approximate percentiles.

use climber_core::IoSnapshot;
use climber_dfs::format::{ByteReader, Decode, Encode};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Latency histogram buckets: bucket `i` counts requests whose end-to-end
/// latency is in `[2^i, 2^(i+1))` microseconds; 40 buckets span 1 µs to
/// ~12 days, far beyond any request this server would keep alive.
const LATENCY_BUCKETS: usize = 40;

/// Lock-free serving metrics, shared by handlers and workers.
///
/// Counters are monotone relaxed atomics — each one is individually exact,
/// while a [`report`](Self::report) is a near-consistent snapshot (readers
/// never block the serving path). Percentiles are approximate: each
/// observation lands in a power-of-two latency bucket and a percentile
/// reports its bucket's upper bound, so the error is at most 2× — the
/// right trade for a hot path that must never take a lock.
#[derive(Debug)]
pub struct ServeMetrics {
    start: Instant,
    admitted: AtomicU64,
    rejected: AtomicU64,
    deadline_missed: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    latency: Vec<AtomicU64>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Fresh metrics; uptime and QPS count from now.
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            deadline_missed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            latency: (0..LATENCY_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// A request entered the admission queue.
    pub fn on_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was refused (overload or shutdown).
    pub fn on_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// An admitted request's handler gave up waiting: its per-request
    /// deadline expired before the batch engine answered.
    pub fn on_deadline_missed(&self) {
        self.deadline_missed.fetch_add(1, Ordering::Relaxed);
    }

    /// A micro-batch of `size` requests finished executing.
    pub fn on_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
    }

    /// A request completed with the given queue-entry→response latency.
    pub fn on_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let us = latency.as_micros().max(1) as u64;
        let bucket = (63 - us.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// The upper bound (µs) of the bucket holding percentile `q` (0–100).
    fn percentile_us(&self, counts: &[u64], q: f64) -> u64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << LATENCY_BUCKETS
    }

    /// Snapshots everything into a wire-encodable [`StatsReport`].
    /// `queue_depth` is sampled by the caller (the queue owns it).
    pub fn report(&self, queue_depth: u64) -> StatsReport {
        let counts: Vec<u64> = self
            .latency
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        let uptime = self.start.elapsed();
        StatsReport {
            uptime_us: uptime.as_micros() as u64,
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            deadline_missed: self.deadline_missed.load(Ordering::Relaxed),
            completed,
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            queue_depth,
            qps: completed as f64 / uptime.as_secs_f64().max(1e-9),
            p50_us: self.percentile_us(&counts, 50.0),
            p95_us: self.percentile_us(&counts, 95.0),
            p99_us: self.percentile_us(&counts, 99.0),
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            cache_resident_bytes: 0,
            cache_compressed_ratio: 1.0,
        }
    }
}

/// One snapshot of the serving metrics, served by the stats endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// Microseconds since the server started.
    pub uptime_us: u64,
    /// Requests accepted into the admission queue.
    pub admitted: u64,
    /// Requests refused with a typed overload/shutdown response.
    pub rejected: u64,
    /// Admitted requests whose handlers answered a typed
    /// deadline-exceeded error instead of waiting for the batch engine.
    pub deadline_missed: u64,
    /// Requests answered.
    pub completed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Mean requests per executed micro-batch (batch occupancy).
    pub mean_batch: f64,
    /// Queue depth at snapshot time.
    pub queue_depth: u64,
    /// Completed requests per second of uptime.
    pub qps: f64,
    /// Approximate median latency (µs), queue entry → response ready.
    pub p50_us: u64,
    /// Approximate 95th-percentile latency (µs).
    pub p95_us: u64,
    /// Approximate 99th-percentile latency (µs).
    pub p99_us: u64,
    /// Backend block-cache hits since the cache was created (0 when the
    /// backend serves without one).
    pub cache_hits: u64,
    /// Backend block-cache misses.
    pub cache_misses: u64,
    /// Blocks evicted by the backend's cache to stay in budget.
    pub cache_evictions: u64,
    /// Bytes currently charged against the cache's budget.
    pub cache_resident_bytes: u64,
    /// On-disk ÷ in-memory size of resident cached blocks (1.0 when the
    /// cache is empty, absent, or uncompressed).
    pub cache_compressed_ratio: f64,
}

impl StatsReport {
    /// Overlays the backend's block-cache counters (from
    /// [`climber_core::SearchBackend::io`]) onto this snapshot — the
    /// serving layer composes the two because the metrics object never
    /// sees the backend.
    #[must_use]
    pub fn with_io(mut self, io: &IoSnapshot) -> Self {
        self.cache_hits = io.cache_hits;
        self.cache_misses = io.cache_misses;
        self.cache_evictions = io.cache_evictions;
        self.cache_resident_bytes = io.cache_resident_bytes;
        self.cache_compressed_ratio = io.cache_compressed_ratio();
        self
    }
}

impl Encode for StatsReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.uptime_us.encode(out);
        self.admitted.encode(out);
        self.rejected.encode(out);
        self.deadline_missed.encode(out);
        self.completed.encode(out);
        self.batches.encode(out);
        self.mean_batch.encode(out);
        self.queue_depth.encode(out);
        self.qps.encode(out);
        self.p50_us.encode(out);
        self.p95_us.encode(out);
        self.p99_us.encode(out);
        self.cache_hits.encode(out);
        self.cache_misses.encode(out);
        self.cache_evictions.encode(out);
        self.cache_resident_bytes.encode(out);
        self.cache_compressed_ratio.encode(out);
    }
}

impl Decode for StatsReport {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, String> {
        Ok(Self {
            uptime_us: r.u64()?,
            admitted: r.u64()?,
            rejected: r.u64()?,
            deadline_missed: r.u64()?,
            completed: r.u64()?,
            batches: r.u64()?,
            mean_batch: r.f64()?,
            queue_depth: r.u64()?,
            qps: r.f64()?,
            p50_us: r.u64()?,
            p95_us: r.u64()?,
            p99_us: r.u64()?,
            cache_hits: r.u64()?,
            cache_misses: r.u64()?,
            cache_evictions: r.u64()?,
            cache_resident_bytes: r.u64()?,
            cache_compressed_ratio: r.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_batches_accumulate() {
        let m = ServeMetrics::new();
        for _ in 0..10 {
            m.on_admitted();
        }
        m.on_rejected();
        m.on_batch(4);
        m.on_batch(6);
        for _ in 0..10 {
            m.on_completed(Duration::from_micros(100));
        }
        let r = m.report(3);
        assert_eq!(r.admitted, 10);
        assert_eq!(r.rejected, 1);
        assert_eq!(r.completed, 10);
        assert_eq!(r.batches, 2);
        assert!((r.mean_batch - 5.0).abs() < 1e-9);
        assert_eq!(r.queue_depth, 3);
        assert!(r.qps > 0.0);
    }

    #[test]
    fn percentiles_bound_observations_within_2x() {
        let m = ServeMetrics::new();
        // 9 fast requests and one slow one
        for _ in 0..9 {
            m.on_completed(Duration::from_micros(100));
        }
        m.on_completed(Duration::from_millis(80));
        let r = m.report(0);
        // 100 µs lands in [64,128) → upper bound 128
        assert_eq!(r.p50_us, 128);
        // ranks 9.5 and 9.9 round up to the slow request: 80 ms lands in
        // [65.5,131) ms → upper bound 131072 µs
        assert_eq!(r.p95_us, 131_072);
        assert_eq!(r.p99_us, 131_072);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let r = ServeMetrics::new().report(0);
        assert_eq!((r.p50_us, r.p95_us, r.p99_us), (0, 0, 0));
        assert_eq!(r.mean_batch, 0.0);
    }

    #[test]
    fn report_roundtrips_through_the_codec() {
        let m = ServeMetrics::new();
        m.on_admitted();
        m.on_completed(Duration::from_micros(42));
        m.on_batch(1);
        let r = m.report(7);
        let bytes = r.encode_vec();
        assert_eq!(StatsReport::decode_vec(&bytes).unwrap(), r);
        assert!(StatsReport::decode_vec(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn cache_overlay_fills_fields_and_survives_the_codec() {
        let io = IoSnapshot {
            cache_hits: 10,
            cache_misses: 4,
            cache_evictions: 2,
            cache_resident_bytes: 1 << 20,
            cache_raw_bytes: 1000,
            cache_stored_bytes: 250,
            ..IoSnapshot::default()
        };
        let r = ServeMetrics::new().report(0).with_io(&io);
        assert_eq!(r.cache_hits, 10);
        assert_eq!(r.cache_misses, 4);
        assert_eq!(r.cache_evictions, 2);
        assert_eq!(r.cache_resident_bytes, 1 << 20);
        assert!((r.cache_compressed_ratio - 0.25).abs() < 1e-12);
        let back = StatsReport::decode_vec(&r.encode_vec()).unwrap();
        assert_eq!(back, r);
        // A cacheless backend reports the neutral defaults.
        let plain = ServeMetrics::new()
            .report(0)
            .with_io(&IoSnapshot::default());
        assert_eq!(plain.cache_hits + plain.cache_misses, 0);
        assert!((plain.cache_compressed_ratio - 1.0).abs() < 1e-12);
    }
}
