//! A small blocking client for the serving protocol — used by the
//! example, the equivalence tests, and the load generator.

use crate::metrics::StatsReport;
use crate::protocol::{read_message, write_frame, Response, REQ_PING, REQ_SEARCH, REQ_STATS};
use climber_core::{ClimberError, QueryOutcome, SearchRequest, ServeError};
use climber_dfs::format::Encode;
use std::net::{TcpStream, ToSocketAddrs};

/// One blocking connection to a [`Server`](crate::server::Server):
/// requests go out one frame at a time, responses come back in order.
/// Clone-free: [`search`](Self::search) encodes straight from the caller's
/// request reference.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to a serving instance.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClimberError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Executes one search on the server. The outcome is bit-identical to
    /// calling [`Climber::search`] locally with the same request; typed
    /// failures ([`ServeError::Overloaded`], [`ServeError::ShuttingDown`],
    /// bad requests) come back as the matching error variant.
    ///
    /// [`Climber::search`]: climber_core::Climber::search
    pub fn search(&mut self, req: &SearchRequest) -> Result<QueryOutcome, ClimberError> {
        let mut payload = Vec::new();
        REQ_SEARCH.encode(&mut payload);
        req.encode(&mut payload);
        write_frame(&mut self.stream, &payload)?;
        match self.expect_response()? {
            Response::Outcome(outcome) => Ok(outcome),
            Response::Error { status, message } => {
                Err(ServeError::from_wire(status, message).into())
            }
            other => Err(
                ServeError::Protocol(format!("expected outcome or error, got {other:?}")).into(),
            ),
        }
    }

    /// Fetches the server's metrics snapshot.
    pub fn stats(&mut self) -> Result<StatsReport, ClimberError> {
        write_frame(&mut self.stream, &[REQ_STATS])?;
        match self.expect_response()? {
            Response::Stats(report) => Ok(report),
            Response::Error { status, message } => {
                Err(ServeError::from_wire(status, message).into())
            }
            other => Err(ServeError::Protocol(format!("expected stats, got {other:?}")).into()),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClimberError> {
        write_frame(&mut self.stream, &[REQ_PING])?;
        match self.expect_response()? {
            Response::Pong => Ok(()),
            other => Err(ServeError::Protocol(format!("expected pong, got {other:?}")).into()),
        }
    }

    fn expect_response(&mut self) -> Result<Response, ClimberError> {
        read_message::<Response>(&mut self.stream)?.ok_or_else(|| {
            ServeError::Protocol("server closed the connection mid-request".into()).into()
        })
    }
}
