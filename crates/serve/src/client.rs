//! A small blocking client for the serving protocol — used by the
//! example, the equivalence tests, and the load generator.
//!
//! The client is resilient by default: every request is read-only
//! (searches, stats, ping, health), so a transport failure — connection
//! refused, reset, torn frame, socket timeout — is retried against a
//! fresh connection under a capped jittered exponential backoff
//! ([`RetryPolicy`]). Typed server responses (overloaded, shutting down,
//! bad request, deadline exceeded) are **not** retried: the server
//! answered; retrying is the caller's policy decision.

use crate::metrics::StatsReport;
use crate::protocol::{
    read_message, write_frame, HealthReport, Response, REQ_HEALTH, REQ_PING, REQ_SEARCH, REQ_STATS,
};
use climber_core::error::status;
use climber_core::{ClimberError, QueryOutcome, SearchRequest, ServeError};
use climber_dfs::format::Encode;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

/// Reconnect/retry policy for transport failures: capped exponential
/// backoff with deterministic jitter. Attempt `n` (0-based) sleeps
/// `min(cap, base * 2^n)` scaled by a jitter factor in `[0.5, 1.0)` —
/// jitter spreads a thundering herd of clients reconnecting to a
/// restarted server.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast on any transport
    /// error).
    pub max_retries: u32,
    /// First backoff delay.
    pub base: Duration,
    /// Upper bound on any single backoff delay.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 5,
            base: Duration::from_millis(20),
            cap: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// The jittered delay before retry `attempt` (0-based). `jitter` is a
    /// raw random word; only its low bits are used.
    fn delay(&self, attempt: u32, jitter: u64) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap);
        // scale into [0.5, 1.0): half deterministic floor, half jitter
        let frac = 0.5 + (jitter & 0xFFFF) as f64 / (2.0 * 65536.0);
        exp.mul_f64(frac)
    }
}

/// One logical connection to a [`Server`](crate::server::Server):
/// requests go out one frame at a time, responses come back in order.
/// Underneath, the TCP stream is re-established on demand — a client
/// created before a server restart keeps working across it, replaying
/// the in-flight read-only request per [`RetryPolicy`].
#[derive(Debug)]
pub struct ServeClient {
    addrs: Vec<SocketAddr>,
    stream: Option<TcpStream>,
    retry: RetryPolicy,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    /// xorshift64* state for backoff jitter; deterministic per client.
    jitter_state: u64,
}

impl ServeClient {
    /// Connects to a serving instance. Fails fast if no address is
    /// reachable right now; transient failures later are retried per
    /// [`RetryPolicy`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClimberError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "address resolved to nothing",
            )
            .into());
        }
        let mut client = Self {
            // Seed from the target address so two clients of different
            // servers never share a jitter sequence, yet runs reproduce.
            jitter_state: 0x9E37_79B9_7F4A_7C15 ^ u64::from(addrs[0].port()),
            addrs,
            stream: None,
            retry: RetryPolicy::default(),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
        };
        client.reconnect()?;
        Ok(client)
    }

    /// Replaces the transport retry policy.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the socket read timeout (response wait bound; default 30 s).
    /// `None` blocks forever. Applies to the current connection and every
    /// reconnect after it.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClimberError> {
        self.read_timeout = timeout;
        if let Some(s) = &self.stream {
            s.set_read_timeout(timeout)?;
        }
        Ok(())
    }

    /// Sets the socket write timeout (request send bound; default 30 s).
    /// `None` blocks forever. Applies to the current connection and every
    /// reconnect after it.
    pub fn set_write_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClimberError> {
        self.write_timeout = timeout;
        if let Some(s) = &self.stream {
            s.set_write_timeout(timeout)?;
        }
        Ok(())
    }

    /// Executes one search on the server. The outcome is bit-identical to
    /// calling [`Climber::search`] locally with the same request; typed
    /// failures ([`ServeError::Overloaded`], [`ServeError::ShuttingDown`],
    /// [`ServeError::DeadlineExceeded`], bad requests) come back as the
    /// matching error variant. Searches are read-only, so a transport
    /// failure mid-request is replayed on a fresh connection — a server
    /// killed and restarted between calls (or mid-call) costs retries,
    /// never a wrong or duplicated answer.
    ///
    /// [`Climber::search`]: climber_core::Climber::search
    pub fn search(&mut self, req: &SearchRequest) -> Result<QueryOutcome, ClimberError> {
        let mut payload = Vec::new();
        REQ_SEARCH.encode(&mut payload);
        req.encode(&mut payload);
        match self.request(&payload)? {
            Response::Outcome(outcome) => Ok(outcome),
            Response::Error { status, message } => {
                Err(ServeError::from_wire(status, message).into())
            }
            other => Err(
                ServeError::Protocol(format!("expected outcome or error, got {other:?}")).into(),
            ),
        }
    }

    /// Fetches the server's metrics snapshot.
    pub fn stats(&mut self) -> Result<StatsReport, ClimberError> {
        match self.request(&[REQ_STATS])? {
            Response::Stats(report) => Ok(report),
            Response::Error { status, message } => {
                Err(ServeError::from_wire(status, message).into())
            }
            other => Err(ServeError::Protocol(format!("expected stats, got {other:?}")).into()),
        }
    }

    /// Fetches the server's health: backend shard/quarantine state plus
    /// queue depth — the endpoint a load balancer polls.
    pub fn health(&mut self) -> Result<HealthReport, ClimberError> {
        match self.request(&[REQ_HEALTH])? {
            Response::Health(report) => Ok(report),
            Response::Error { status, message } => {
                Err(ServeError::from_wire(status, message).into())
            }
            other => Err(ServeError::Protocol(format!("expected health, got {other:?}")).into()),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClimberError> {
        match self.request(&[REQ_PING])? {
            Response::Pong => Ok(()),
            other => Err(ServeError::Protocol(format!("expected pong, got {other:?}")).into()),
        }
    }

    /// Sends one request frame and reads the response, replaying the
    /// exchange on a fresh connection after transport failures. Every
    /// protocol request is read-only, so the replay cannot duplicate
    /// work the caller observes.
    fn request(&mut self, payload: &[u8]) -> Result<Response, ClimberError> {
        let mut attempt = 0u32;
        loop {
            match self.try_once(payload) {
                Ok(resp) => {
                    // A draining server refused the request without
                    // executing it — the one typed answer worth retrying,
                    // because a replacement may be coming up on the same
                    // address (rolling restart). Reconnect and replay.
                    let draining = matches!(
                        &resp,
                        Response::Error { status: s, .. } if *s == status::SHUTTING_DOWN
                    );
                    if !draining || attempt >= self.retry.max_retries {
                        return Ok(resp);
                    }
                    self.stream = None;
                    let jitter = self.next_jitter();
                    thread::sleep(self.retry.delay(attempt, jitter));
                    attempt += 1;
                }
                Err(e) => {
                    // Typed server answers are definitive — only transport
                    // failures (I/O, torn frames) mean "try another
                    // connection".
                    let transport = matches!(
                        e,
                        ClimberError::Io(_) | ClimberError::Serve(ServeError::Protocol(_))
                    );
                    if !transport || attempt >= self.retry.max_retries {
                        return Err(e);
                    }
                    self.stream = None;
                    let jitter = self.next_jitter();
                    thread::sleep(self.retry.delay(attempt, jitter));
                    attempt += 1;
                }
            }
        }
    }

    fn try_once(&mut self, payload: &[u8]) -> Result<Response, ClimberError> {
        if self.stream.is_none() {
            self.reconnect()?;
        }
        let stream = self.stream.as_mut().expect("just connected");
        let result = write_frame(stream, payload).and_then(|()| {
            read_message::<Response>(stream)?.ok_or_else(|| {
                ServeError::Protocol("server closed the connection mid-request".into()).into()
            })
        });
        if result.is_err() {
            // The stream is unsynchronised (torn frame) or dead; never
            // reuse it.
            self.stream = None;
        }
        result
    }

    fn reconnect(&mut self) -> Result<(), ClimberError> {
        let mut last: Option<io::Error> = None;
        for addr in &self.addrs {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(self.read_timeout)?;
                    stream.set_write_timeout(self.write_timeout)?;
                    self.stream = Some(stream);
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("addrs is non-empty").into())
    }

    fn next_jitter(&mut self) -> u64 {
        // xorshift64*: tiny, deterministic, plenty for backoff spreading.
        let mut x = self.jitter_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.jitter_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_and_jittered_into_the_lower_half() {
        let p = RetryPolicy {
            max_retries: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
        };
        // attempt 0: exp = 10ms, jitter scales into [5, 10) ms
        let d0 = p.delay(0, 0);
        assert_eq!(d0, Duration::from_millis(5));
        let d0j = p.delay(0, 0xFFFF);
        assert!(d0j < Duration::from_millis(10), "{d0j:?}");
        // large attempts saturate at the cap (scaled by jitter)
        let d9 = p.delay(9, 0xFFFF);
        assert!(d9 >= Duration::from_millis(50) && d9 < Duration::from_millis(100));
        // the shift guard: attempt numbers past 16 must not overflow
        let _ = p.delay(40, 1);
    }

    #[test]
    fn connect_to_nothing_fails_fast_with_io() {
        // port 1 on localhost: refused immediately, no server needed
        let err = ServeClient::connect("127.0.0.1:1").unwrap_err();
        assert!(matches!(err, ClimberError::Io(_)));
    }
}
