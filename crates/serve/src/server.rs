//! The TCP server: acceptor + per-connection handlers + a worker pool
//! draining the admission queue into the batch engine.
//!
//! Threading model:
//!
//! * one **acceptor** thread blocks on `TcpListener::accept` and spawns a
//!   detached handler per connection;
//! * each **handler** reads frames, validates requests, submits them to
//!   the [`AdmissionQueue`], and writes the response its completion
//!   channel delivers — or the typed error (`bad request`, `overloaded`,
//!   `shutting down`) when the request never made it in;
//! * **workers** loop on [`AdmissionQueue::next_batch`] and feed each
//!   micro-batch to the backend's [`SearchBackend::search_many`], so
//!   concurrent requests from independent connections share partition
//!   opens and cluster decodes exactly like a hand-built batch would.
//!
//! The server is generic over [`SearchBackend`], so a single
//! [`Climber`](climber_core::Climber) and a
//! [`ShardedClimber`](climber_core::ShardedClimber) serve through the
//! identical wire surface — clients cannot tell (and need not care)
//! whether the index behind the port is sharded.
//!
//! [`shutdown`](Server::shutdown) is drain-clean: the acceptor stops, the
//! queue refuses new work, every admitted request is still executed and
//! answered, and every thread the server owns is joined.

use crate::metrics::{ServeMetrics, StatsReport};
use crate::protocol::{
    bad_request, error_response, read_message, write_message, HealthReport, Request, Response,
};
use crate::queue::{AdmissionQueue, BatchPolicy, Pending};
use climber_core::{ClimberError, SearchBackend, ServeError};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server tuning knobs (see [`BatchPolicy`] for the queue semantics).
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Flush a micro-batch at this many requests (default 64).
    pub max_batch: usize,
    /// Flush once the oldest request has waited this long (default 2 ms).
    pub max_delay: Duration,
    /// Admission bound; beyond it submissions are refused (default 1024).
    pub queue_cap: usize,
    /// Worker threads executing batches; `0` = the machine's available
    /// parallelism (default).
    pub workers: usize,
    /// Per-request deadline: how long a connection handler waits for the
    /// batch engine before answering with a typed
    /// [`ServeError::DeadlineExceeded`]. `None` (default) waits forever.
    /// The batch still executes server-side; only the response is
    /// abandoned, so read-only searches stay safe to retry.
    pub request_deadline: Option<Duration>,
    /// Socket read timeout on accepted connections: an idle client is
    /// disconnected after this long without a frame. `None` (default)
    /// keeps idle connections open forever.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout on accepted connections, bounding how long a
    /// stalled client can pin a handler thread mid-response (default 30 s).
    pub write_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            queue_cap: 1024,
            workers: 0,
            request_deadline: None,
            read_timeout: None,
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

impl ServeConfig {
    /// Sets the micro-batch size cap.
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the latency deadline for partial batches.
    #[must_use]
    pub fn with_max_delay(mut self, max_delay: Duration) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Sets the admission bound.
    #[must_use]
    pub fn with_queue_cap(mut self, queue_cap: usize) -> Self {
        self.queue_cap = queue_cap.max(1);
        self
    }

    /// Sets the worker count (`0` = available parallelism).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the per-request deadline (`None` = wait forever).
    #[must_use]
    pub fn with_request_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.request_deadline = deadline;
        self
    }

    /// Sets the socket read timeout on accepted connections.
    #[must_use]
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Sets the socket write timeout on accepted connections.
    #[must_use]
    pub fn with_write_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.write_timeout = timeout;
        self
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// A running serving instance: owns the listener port, the worker pool,
/// and the admission queue. Dropping it (or calling
/// [`shutdown`](Self::shutdown)) drains and joins everything it owns.
pub struct Server {
    local_addr: SocketAddr,
    queue: Arc<AdmissionQueue>,
    metrics: Arc<ServeMetrics>,
    // Probes the backend's serve-phase I/O (block-cache counters included)
    // without the Server being generic over the backend type.
    io_probe: Arc<dyn Fn() -> climber_core::IoSnapshot + Send + Sync>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// serving `backend` — any [`SearchBackend`], i.e. a single
    /// [`Climber`](climber_core::Climber) or a whole
    /// [`ShardedClimber`](climber_core::ShardedClimber). The index is
    /// shared, read-only, across workers; updates through other handles
    /// are picked up per batch.
    pub fn start<B>(
        backend: Arc<B>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> Result<Self, ClimberError>
    where
        B: SearchBackend + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let queue = Arc::new(AdmissionQueue::new(BatchPolicy {
            max_batch: config.max_batch.max(1),
            max_delay: config.max_delay,
            queue_cap: config.queue_cap.max(1),
        }));
        let metrics = Arc::new(ServeMetrics::new());
        let stop = Arc::new(AtomicBool::new(false));

        let workers = (0..config.resolved_workers())
            .map(|i| {
                let queue = Arc::clone(&queue);
                let metrics = Arc::clone(&metrics);
                let backend = Arc::clone(&backend);
                thread::Builder::new()
                    .name(format!("climber-serve-worker-{i}"))
                    .spawn(move || worker_loop(&*backend, &queue, &metrics))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let queue = Arc::clone(&queue);
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&stop);
            let backend = Arc::clone(&backend);
            thread::Builder::new()
                .name("climber-serve-acceptor".into())
                .spawn(move || accept_loop(&listener, &backend, &queue, &metrics, &stop, config))
                .expect("spawn acceptor")
        };

        let io_probe: Arc<dyn Fn() -> climber_core::IoSnapshot + Send + Sync> = {
            let backend = Arc::clone(&backend);
            Arc::new(move || backend.io())
        };

        Ok(Self {
            local_addr,
            queue,
            metrics,
            io_probe,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (with the OS-assigned port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the serving metrics, same as the wire stats endpoint
    /// (backend block-cache counters included).
    pub fn stats(&self) -> StatsReport {
        self.metrics
            .report(self.queue.depth() as u64)
            .with_io(&(self.io_probe)())
    }

    /// Stops accepting, drains every admitted request, and joins every
    /// owned thread. In-flight requests are answered; requests submitted
    /// after this point get a typed shutting-down response.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The acceptor blocks in accept(); a throwaway connection wakes it
        // so it can observe the stop flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.queue.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn worker_loop<B: SearchBackend + ?Sized>(
    backend: &B,
    queue: &AdmissionQueue,
    metrics: &ServeMetrics,
) {
    // `None` = queue empty + shut down; every admitted request was part of
    // some earlier batch, so exiting here never strands a client.
    while let Some(batch) = queue.next_batch() {
        let mut reqs = Vec::with_capacity(batch.len());
        let mut completions: Vec<(mpsc::Sender<_>, Instant)> = Vec::with_capacity(batch.len());
        for p in batch {
            reqs.push(p.req);
            completions.push((p.tx, p.enqueued));
        }
        // Handlers validate before submitting, so search_many never sees a
        // panicking request; outcomes are bit-identical to per-request
        // `search` calls (the batch engine's — and for a sharded backend
        // the scatter-gather merge's — equivalence guarantee).
        let outcomes = backend.search_many(&reqs);
        metrics.on_batch(reqs.len());
        for ((tx, enqueued), outcome) in completions.into_iter().zip(outcomes) {
            metrics.on_completed(enqueued.elapsed());
            // A dead receiver just means the client hung up mid-request.
            let _ = tx.send(outcome);
        }
    }
}

fn accept_loop<B: SearchBackend + 'static>(
    listener: &TcpListener,
    backend: &Arc<B>,
    queue: &Arc<AdmissionQueue>,
    metrics: &Arc<ServeMetrics>,
    stop: &Arc<AtomicBool>,
    config: ServeConfig,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let backend = Arc::clone(backend);
                let queue = Arc::clone(queue);
                let metrics = Arc::clone(metrics);
                // Handlers are detached: they exit on client EOF, and a
                // post-shutdown submit is refused by the queue, so none of
                // them can outlive the process holding work.
                let _ = thread::Builder::new()
                    .name("climber-serve-conn".into())
                    .spawn(move || handle_connection(stream, &*backend, &queue, &metrics, config));
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn handle_connection<B: SearchBackend + ?Sized>(
    mut stream: TcpStream,
    backend: &B,
    queue: &AdmissionQueue,
    metrics: &ServeMetrics,
    config: ServeConfig,
) {
    // Request/response frames are tiny; batching happens in the queue, not
    // in the socket buffer.
    let _ = stream.set_nodelay(true);
    // A stalled or idle peer must not pin this thread forever.
    let _ = stream.set_read_timeout(config.read_timeout);
    let _ = stream.set_write_timeout(config.write_timeout);
    loop {
        let request = match read_message::<Request>(&mut stream) {
            Ok(Some(req)) => req,
            // clean EOF: the client is done
            Ok(None) => return,
            Err(e) => {
                // Best-effort typed answer, then drop the connection — a
                // torn frame leaves the stream unsynchronised.
                let _ = write_message(&mut stream, &error_response(&e));
                return;
            }
        };
        let response = match request {
            Request::Ping => Response::Pong,
            Request::Stats => {
                Response::Stats(metrics.report(queue.depth() as u64).with_io(&backend.io()))
            }
            Request::Health => Response::Health(HealthReport {
                backend: backend.health(),
                queue_depth: queue.depth() as u64,
                cache_resident_bytes: backend.io().cache_resident_bytes,
            }),
            Request::Search(req) => match req.validate() {
                Err(msg) => {
                    metrics.on_rejected();
                    bad_request(msg)
                }
                Ok(()) => {
                    let (tx, rx) = mpsc::channel();
                    let pending = Pending {
                        req,
                        tx,
                        enqueued: Instant::now(),
                    };
                    match queue.submit(pending) {
                        Err(e) => {
                            metrics.on_rejected();
                            error_response(&e.into())
                        }
                        Ok(()) => {
                            metrics.on_admitted();
                            let answer = match config.request_deadline {
                                Some(deadline) => rx.recv_timeout(deadline).map_err(|e| match e {
                                    // The batch engine ran past the
                                    // deadline: abandon the response (the
                                    // batch still completes; its send just
                                    // finds a dead receiver).
                                    mpsc::RecvTimeoutError::Timeout => ServeError::DeadlineExceeded,
                                    mpsc::RecvTimeoutError::Disconnected => {
                                        ServeError::ShuttingDown
                                    }
                                }),
                                // The worker dropped the sender without
                                // answering — only possible if the pool
                                // died; tell the client to go elsewhere.
                                None => rx.recv().map_err(|_| ServeError::ShuttingDown),
                            };
                            match answer {
                                Ok(outcome) => Response::Outcome(outcome),
                                Err(e) => {
                                    if matches!(e, ServeError::DeadlineExceeded) {
                                        metrics.on_deadline_missed();
                                    }
                                    error_response(&e.into())
                                }
                            }
                        }
                    }
                }
            },
        };
        if write_message(&mut stream, &response).is_err() {
            return;
        }
    }
}
