//! The wire protocol: length-prefixed frames over TCP, bodies encoded with
//! the `climber_dfs::format` codec.
//!
//! ## Frame layout
//!
//! ```text
//! +----------------+---------------------------+
//! | length: u32 LE | payload (length bytes)    |
//! +----------------+---------------------------+
//! payload = tag: u8 | body (tag-specific codec bytes)
//! ```
//!
//! Requests: `REQ_SEARCH` carries a [`SearchRequest`]; `REQ_STATS` and
//! `REQ_PING` carry no body. Responses: `RESP_OK` carries a
//! [`QueryOutcome`], `RESP_ERR` a status byte plus a length-prefixed
//! UTF-8 message, `RESP_STATS` a [`StatsReport`], `RESP_PONG` nothing.
//!
//! Frames above [`MAX_FRAME`] are refused before allocation, and every
//! decode error is a typed [`ServeError::Protocol`] — a malformed client
//! can never panic a connection handler.

use crate::metrics::StatsReport;
use climber_core::error::status;
use climber_core::{BackendHealth, ClimberError, QueryOutcome, SearchRequest, ServeError};
use climber_dfs::format::{ByteReader, Decode, Encode};
use std::io::{Read, Write};

/// Hard cap on a frame's payload size (64 MiB): large enough for any
/// realistic query or outcome, small enough that a hostile length prefix
/// cannot balloon allocation.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Request tag: a [`SearchRequest`] follows.
pub const REQ_SEARCH: u8 = 1;
/// Request tag: return a [`StatsReport`]; no body.
pub const REQ_STATS: u8 = 2;
/// Request tag: liveness probe; no body.
pub const REQ_PING: u8 = 3;
/// Request tag: return a [`HealthReport`]; no body.
pub const REQ_HEALTH: u8 = 4;

/// Response tag: a [`QueryOutcome`] follows.
pub const RESP_OK: u8 = 1;
/// Response tag: status byte + length-prefixed UTF-8 message.
pub const RESP_ERR: u8 = 2;
/// Response tag: a [`StatsReport`] follows.
pub const RESP_STATS: u8 = 3;
/// Response tag: pong; no body.
pub const RESP_PONG: u8 = 4;
/// Response tag: a [`HealthReport`] follows.
pub const RESP_HEALTH: u8 = 5;

/// One decoded client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute a search.
    Search(SearchRequest),
    /// Return serving metrics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Return the backend's recovery health.
    Health,
}

/// What the health endpoint answers: the backend's shard/quarantine state
/// plus the admission queue's depth — everything a load balancer needs to
/// tell a degraded node from a healthy one without issuing a real query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthReport {
    /// The backend's shard liveness and quarantine counts.
    pub backend: BackendHealth,
    /// Admission-queue depth at snapshot time.
    pub queue_depth: u64,
    /// Bytes resident in the backend's block cache (0 without one) — a
    /// cheap warmth signal: a balancer draining-in a node can hold back
    /// until the cache fills.
    pub cache_resident_bytes: u64,
}

impl HealthReport {
    /// True when nothing is dead, quarantined, or queued over capacity.
    pub fn is_healthy(&self) -> bool {
        self.backend.is_healthy()
    }
}

impl Encode for HealthReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.backend.shards.encode(out);
        self.backend.dead_shards.encode(out);
        self.backend.quarantined_partitions.encode(out);
        self.queue_depth.encode(out);
        self.cache_resident_bytes.encode(out);
    }
}

impl Decode for HealthReport {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, String> {
        Ok(Self {
            backend: BackendHealth {
                shards: r.u32()?,
                dead_shards: r.u32()?,
                quarantined_partitions: r.u64()?,
            },
            queue_depth: r.u64()?,
            cache_resident_bytes: r.u64()?,
        })
    }
}

/// One decoded server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The outcome of a successfully executed search.
    Outcome(QueryOutcome),
    /// A typed failure: wire status code + human-readable message.
    Error {
        /// One of the [`status`] codes.
        status: u8,
        /// Human-readable detail.
        message: String,
    },
    /// Serving metrics.
    Stats(StatsReport),
    /// Liveness answer.
    Pong,
    /// The backend's recovery health.
    Health(HealthReport),
}

impl Encode for Request {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Search(req) => {
                REQ_SEARCH.encode(out);
                req.encode(out);
            }
            Request::Stats => REQ_STATS.encode(out),
            Request::Ping => REQ_PING.encode(out),
            Request::Health => REQ_HEALTH.encode(out),
        }
    }
}

impl Decode for Request {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, String> {
        match r.u8()? {
            REQ_SEARCH => Ok(Request::Search(SearchRequest::decode(r)?)),
            REQ_STATS => Ok(Request::Stats),
            REQ_PING => Ok(Request::Ping),
            REQ_HEALTH => Ok(Request::Health),
            other => Err(format!("unknown request tag {other}")),
        }
    }
}

impl Encode for Response {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Outcome(o) => {
                RESP_OK.encode(out);
                o.encode(out);
            }
            Response::Error { status, message } => {
                RESP_ERR.encode(out);
                status.encode(out);
                message.as_bytes().encode(out);
            }
            Response::Stats(s) => {
                RESP_STATS.encode(out);
                s.encode(out);
            }
            Response::Pong => RESP_PONG.encode(out),
            Response::Health(h) => {
                RESP_HEALTH.encode(out);
                h.encode(out);
            }
        }
    }
}

impl Decode for Response {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, String> {
        match r.u8()? {
            RESP_OK => Ok(Response::Outcome(QueryOutcome::decode(r)?)),
            RESP_ERR => {
                let status = r.u8()?;
                let bytes = Vec::<u8>::decode(r)?;
                let message = String::from_utf8(bytes).map_err(|_| "error message is not UTF-8")?;
                Ok(Response::Error { status, message })
            }
            RESP_STATS => Ok(Response::Stats(StatsReport::decode(r)?)),
            RESP_PONG => Ok(Response::Pong),
            RESP_HEALTH => Ok(Response::Health(HealthReport::decode(r)?)),
            other => Err(format!("unknown response tag {other}")),
        }
    }
}

/// Writes one frame: `u32` LE payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ClimberError> {
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(ServeError::Protocol(format!(
            "outgoing frame of {} bytes exceeds MAX_FRAME",
            payload.len()
        ))
        .into());
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Encodes and writes one message as a frame.
pub fn write_message(w: &mut impl Write, msg: &impl Encode) -> Result<(), ClimberError> {
    write_frame(w, &msg.encode_vec())
}

/// Reads one frame's payload. `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the connection); any mid-frame truncation,
/// oversized length, or I/O failure is an error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ClimberError> {
    let mut len_buf = [0u8; 4];
    // Distinguish "no next frame" from "torn frame": EOF before the first
    // header byte is a clean close, EOF after it is truncation.
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(ServeError::Protocol("EOF inside frame header".into()).into());
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(ServeError::Protocol(format!(
            "frame of {len} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        ))
        .into());
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| ServeError::Protocol(format!("EOF inside frame body: {e}")))?;
    Ok(Some(payload))
}

/// Reads and decodes one message. `Ok(None)` on clean EOF.
pub fn read_message<T: Decode>(r: &mut impl Read) -> Result<Option<T>, ClimberError> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    let msg =
        T::decode_vec(&payload).map_err(|e| ServeError::Protocol(format!("bad frame: {e}")))?;
    Ok(Some(msg))
}

/// Builds the error [`Response`] for a facade error, preserving its typed
/// wire status.
pub fn error_response(e: &ClimberError) -> Response {
    Response::Error {
        status: e.wire_status(),
        message: e.to_string(),
    }
}

/// Builds the bad-request [`Response`] for a validation failure.
pub fn bad_request(message: String) -> Response {
    Response::Error {
        status: status::BAD_REQUEST,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use climber_core::SearchMode;

    fn sample_request() -> Request {
        Request::Search(
            SearchRequest::new(vec![1.0f32, -2.5, 0.25], 7)
                .adaptive(2)
                .with_budget(9),
        )
    }

    #[test]
    fn requests_roundtrip_through_frames() {
        let mut wire = Vec::new();
        for msg in [
            sample_request(),
            Request::Stats,
            Request::Ping,
            Request::Health,
        ] {
            write_message(&mut wire, &msg).unwrap();
        }
        let mut r = &wire[..];
        let a: Request = read_message(&mut r).unwrap().unwrap();
        let b: Request = read_message(&mut r).unwrap().unwrap();
        let c: Request = read_message(&mut r).unwrap().unwrap();
        let d: Request = read_message(&mut r).unwrap().unwrap();
        match a {
            Request::Search(req) => {
                assert_eq!(req.k, 7);
                assert_eq!(req.mode, SearchMode::Adaptive(2));
                assert_eq!(req.budget, Some(9));
            }
            other => panic!("wrong decode: {other:?}"),
        }
        assert_eq!(b, Request::Stats);
        assert_eq!(c, Request::Ping);
        assert_eq!(d, Request::Health);
        // clean EOF at the frame boundary
        assert!(read_message::<Request>(&mut r).unwrap().is_none());
    }

    #[test]
    fn health_reports_roundtrip() {
        let report = HealthReport {
            backend: BackendHealth {
                shards: 4,
                dead_shards: 1,
                quarantined_partitions: 9,
            },
            queue_depth: 17,
            cache_resident_bytes: 64 * 1024,
        };
        assert!(!report.is_healthy());
        let mut wire = Vec::new();
        write_message(&mut wire, &Response::Health(report)).unwrap();
        let back: Response = read_message(&mut &wire[..]).unwrap().unwrap();
        assert_eq!(back, Response::Health(report));
    }

    #[test]
    fn error_responses_carry_status_and_message() {
        let resp = error_response(&ServeError::Overloaded.into());
        let mut wire = Vec::new();
        write_message(&mut wire, &resp).unwrap();
        let back: Response = read_message(&mut &wire[..]).unwrap().unwrap();
        match back {
            Response::Error { status: s, message } => {
                assert_eq!(s, status::OVERLOADED);
                assert!(message.contains("overloaded"));
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn torn_frames_are_protocol_errors_not_eof() {
        let mut wire = Vec::new();
        write_message(&mut wire, &Request::Ping).unwrap();
        // cut inside the header and inside the body
        for cut in [2, wire.len() - 1] {
            let err = read_message::<Request>(&mut &wire[..cut]).unwrap_err();
            assert!(
                matches!(err, ClimberError::Serve(ServeError::Protocol(_))),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn oversized_frames_are_refused_before_allocation() {
        let mut wire = (MAX_FRAME + 1).to_le_bytes().to_vec();
        wire.extend_from_slice(&[0; 8]);
        let err = read_frame(&mut &wire[..]).unwrap_err();
        assert!(matches!(err, ClimberError::Serve(ServeError::Protocol(_))));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[99u8]).unwrap();
        assert!(read_message::<Request>(&mut &wire[..]).is_err());
        assert!(read_message::<Response>(&mut &wire[..]).is_err());
    }
}
