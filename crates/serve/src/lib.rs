//! # climber-serve
//!
//! A micro-batching network serving layer over the CLIMBER index.
//!
//! The batch engine ([`Climber::search_many`]) earns its candidate-sharing
//! win only when queries arrive *together* — but real traffic arrives one
//! request at a time, over many connections. This crate closes that gap
//! with a classic admission-queue design:
//!
//! * [`protocol`] — a length-prefixed binary wire protocol carrying
//!   [`SearchRequest`]/[`QueryOutcome`] via the same `climber_dfs::format`
//!   codec the on-disk format uses: a served query is byte-for-byte the
//!   request a local caller would build;
//! * [`queue`] — the [`AdmissionQueue`]: connection handlers submit
//!   requests into a bounded queue, worker threads drain them in
//!   micro-batches of up to `max_batch` requests, flushing early once the
//!   oldest request has waited `max_delay`. A full queue rejects with a
//!   typed overload response — graceful degradation, never a hang;
//! * [`server`] — the TCP [`Server`]: acceptor thread, per-connection
//!   handlers, a worker pool feeding the batch engine, and a clean
//!   [`shutdown`](Server::shutdown) that drains every admitted request;
//! * [`metrics`] — per-request latency percentiles plus
//!   QPS/queue-depth/batch-occupancy counters, served by the stats
//!   endpoint as a [`StatsReport`];
//! * [`client`] — a small blocking [`ServeClient`] for examples, tests,
//!   and the load generator.
//!
//! Everything is `std::net` + `std` synchronisation — no new external
//! dependencies. Batched outcomes are **bit-identical** to direct
//! [`Climber::search`] calls (the batch engine's equivalence guarantee;
//! `tests/serving.rs` proves it end-to-end through real sockets).
//!
//! [`Climber::search`]: climber_core::Climber::search
//! [`Climber::search_many`]: climber_core::Climber::search_many
//! [`SearchRequest`]: climber_core::SearchRequest
//! [`QueryOutcome`]: climber_core::QueryOutcome
//! [`AdmissionQueue`]: queue::AdmissionQueue

#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::{RetryPolicy, ServeClient};
pub use metrics::{ServeMetrics, StatsReport};
pub use protocol::HealthReport;
pub use queue::{AdmissionQueue, BatchPolicy};
pub use server::{ServeConfig, Server};
