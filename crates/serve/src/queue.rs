//! The admission queue: where concurrent single requests become
//! micro-batches.
//!
//! ## State machine
//!
//! ```text
//!            submit()                  next_batch()
//! clients ─────────────▶ [ bounded VecDeque ] ─────────────▶ workers
//!             │                                   │
//!             │ queue full → Err(Overloaded)      │ flush when ANY of:
//!             │ draining   → Err(ShuttingDown)    │   len ≥ max_batch
//!             ▼                                   │   oldest waited ≥ max_delay
//!        (request never enqueued,                 │   shutdown (drain rest)
//!         caller answers immediately)             ▼
//!                                      batch of ≤ max_batch Pendings
//! ```
//!
//! A worker blocks on the condvar while the queue is empty, then flushes
//! as soon as the batch is full **or** the oldest request has waited
//! `max_delay` — so under load batches fill instantly (throughput mode),
//! and a lone request still leaves within the latency deadline. Shutdown
//! flips a flag under the same lock: every already-admitted request is
//! still drained and answered, while new submissions are refused with a
//! typed error. Backpressure is the same shape: a full queue *refuses*
//! (never blocks) so an overloaded server degrades into fast typed
//! rejections instead of unbounded queueing or a hang.

use climber_core::{QueryOutcome, SearchRequest, ServeError};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// When and how the queue flushes micro-batches.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Flush as soon as this many requests are waiting.
    pub max_batch: usize,
    /// Flush once the oldest waiting request has waited this long.
    pub max_delay: Duration,
    /// Admission bound: a submit beyond this depth is refused.
    pub queue_cap: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            queue_cap: 1024,
        }
    }
}

/// One admitted request: what to run, where to send the answer, and when
/// it entered the queue (the latency clock).
#[derive(Debug)]
pub struct Pending {
    /// The validated request to execute.
    pub req: SearchRequest,
    /// Completion channel back to the connection handler.
    pub tx: mpsc::Sender<QueryOutcome>,
    /// Queue-entry time; `now - enqueued` is the served latency.
    pub enqueued: Instant,
}

#[derive(Debug, Default)]
struct Inner {
    queue: VecDeque<Pending>,
    shutdown: bool,
}

/// The bounded micro-batching queue between connection handlers and the
/// worker pool. All methods take `&self`; share it in an `Arc`.
#[derive(Debug)]
pub struct AdmissionQueue {
    inner: Mutex<Inner>,
    nonempty: Condvar,
    policy: BatchPolicy,
}

impl AdmissionQueue {
    /// An empty queue under the given policy.
    pub fn new(policy: BatchPolicy) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            nonempty: Condvar::new(),
            policy,
        }
    }

    /// The flush/backpressure policy in force.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Current queue depth (requests admitted but not yet drained).
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().queue.len()
    }

    /// Admits one request, or refuses it without blocking:
    /// [`ServeError::ShuttingDown`] while draining,
    /// [`ServeError::Overloaded`] when the bound is hit. On `Err` the
    /// request was **not** enqueued and no worker will ever see it.
    pub fn submit(&self, pending: Pending) -> Result<(), ServeError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        if inner.queue.len() >= self.policy.queue_cap {
            return Err(ServeError::Overloaded);
        }
        inner.queue.push_back(pending);
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocks until a micro-batch is ready and drains it (oldest first, at
    /// most `max_batch`). Returns `None` only when the queue is shut down
    /// **and** empty — the worker-exit signal; every admitted request is
    /// part of some returned batch first.
    pub fn next_batch(&self) -> Option<Vec<Pending>> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.queue.is_empty() {
                if inner.shutdown {
                    return None;
                }
                inner = self.nonempty.wait(inner).unwrap();
                continue;
            }
            let waited = inner.queue.front().expect("non-empty").enqueued.elapsed();
            let flush = inner.shutdown
                || inner.queue.len() >= self.policy.max_batch
                || waited >= self.policy.max_delay;
            if flush {
                let n = inner.queue.len().min(self.policy.max_batch);
                let batch: Vec<Pending> = inner.queue.drain(..n).collect();
                let more = !inner.queue.is_empty();
                drop(inner);
                if more {
                    // leftovers beyond max_batch: hand them to a sibling
                    self.nonempty.notify_one();
                }
                return Some(batch);
            }
            // Not full yet: sleep until the oldest request's deadline (a
            // new submit's notify wakes us earlier to re-check fullness).
            let remaining = self.policy.max_delay - waited;
            let (guard, _) = self.nonempty.wait_timeout(inner, remaining).unwrap();
            inner = guard;
        }
    }

    /// Starts draining: new submissions are refused from this point, every
    /// already-admitted request is still batched out, and workers blocked
    /// in [`next_batch`](Self::next_batch) return `None` once the queue is
    /// empty.
    pub fn shutdown(&self) {
        self.inner.lock().unwrap().shutdown = true;
        self.nonempty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn pending(id: u64) -> (Pending, mpsc::Receiver<QueryOutcome>) {
        let (tx, rx) = mpsc::channel();
        let p = Pending {
            req: SearchRequest::new(vec![id as f32, 1.0], 1),
            tx,
            enqueued: Instant::now(),
        };
        (p, rx)
    }

    fn policy(max_batch: usize, max_delay_ms: u64, cap: usize) -> BatchPolicy {
        BatchPolicy {
            max_batch,
            max_delay: Duration::from_millis(max_delay_ms),
            queue_cap: cap,
        }
    }

    #[test]
    fn full_batch_flushes_without_waiting_for_the_deadline() {
        let q = AdmissionQueue::new(policy(4, 10_000, 100));
        for i in 0..4 {
            q.submit(pending(i).0).unwrap();
        }
        let t = Instant::now();
        let batch = q.next_batch().expect("full batch ready");
        assert_eq!(batch.len(), 4);
        assert!(
            t.elapsed() < Duration::from_secs(5),
            "flush waited for the 10s deadline despite a full batch"
        );
    }

    #[test]
    fn deadline_flushes_a_partial_batch() {
        let q = Arc::new(AdmissionQueue::new(policy(1000, 30, 100)));
        q.submit(pending(1).0).unwrap();
        q.submit(pending(2).0).unwrap();
        let t = Instant::now();
        let batch = q.next_batch().expect("deadline batch");
        let waited = t.elapsed();
        assert_eq!(batch.len(), 2, "partial batch drained together");
        assert!(
            waited >= Duration::from_millis(5),
            "flushed before the deadline"
        );
        assert!(waited < Duration::from_secs(10), "deadline never fired");
    }

    #[test]
    fn overload_refuses_without_blocking() {
        let q = AdmissionQueue::new(policy(64, 1, 2));
        q.submit(pending(1).0).unwrap();
        q.submit(pending(2).0).unwrap();
        let err = q.submit(pending(3).0).unwrap_err();
        assert!(matches!(err, ServeError::Overloaded));
        assert_eq!(q.depth(), 2, "refused request must not be enqueued");
    }

    #[test]
    fn shutdown_drains_admitted_then_signals_exit() {
        let q = AdmissionQueue::new(policy(64, 10_000, 100));
        q.submit(pending(1).0).unwrap();
        q.submit(pending(2).0).unwrap();
        q.shutdown();
        assert!(matches!(
            q.submit(pending(3).0).unwrap_err(),
            ServeError::ShuttingDown
        ));
        // admitted requests still come out (deadline ignored once draining)
        let batch = q.next_batch().expect("drain batch");
        assert_eq!(batch.len(), 2);
        assert!(q.next_batch().is_none(), "empty + shutdown = exit signal");
    }

    #[test]
    fn blocked_worker_wakes_on_shutdown() {
        let q = Arc::new(AdmissionQueue::new(policy(64, 1, 100)));
        let q2 = Arc::clone(&q);
        let worker = thread::spawn(move || q2.next_batch());
        thread::sleep(Duration::from_millis(20));
        q.shutdown();
        assert!(worker.join().unwrap().is_none());
    }

    #[test]
    fn oversized_spike_splits_into_max_batch_chunks() {
        let q = AdmissionQueue::new(policy(3, 10_000, 100));
        for i in 0..8 {
            q.submit(pending(i).0).unwrap();
        }
        let sizes: Vec<usize> = (0..3).map(|_| q.next_batch().unwrap().len()).collect();
        assert_eq!(sizes, vec![3, 3, 2]);
    }
}
