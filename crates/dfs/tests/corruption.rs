//! Corruption test suite for the persisted index directory, exercised at
//! the storage layer: every damage mode must surface from
//! [`DiskStore::open_read_only`] / [`Manifest::load`] as a distinct typed
//! [`OpenError`] — never a panic, never a silently served index. The same
//! five scenarios are asserted end-to-end through `Climber::open` in the
//! workspace-level `tests/persistence.rs`.

use climber_dfs::format::PartitionWriter;
use climber_dfs::manifest::{
    write_file_atomic, xxh64, FileEntry, Manifest, OpenError, PartitionEntry, FORMAT_VERSION,
    MANIFEST_FILE,
};
use climber_dfs::store::{partition_file_name, DiskStore, PartitionStore};
use std::fs;
use std::path::{Path, PathBuf};

/// Writes a small but realistic index directory: two partition files, an
/// opaque skeleton blob, and a sealed manifest. Returns the directory.
fn persisted_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("climber-corrupt-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();

    let mut partitions = Vec::new();
    let mut num_records = 0u64;
    for (pid, node, n) in [(0u32, 5u64, 7usize), (1, 9, 3)] {
        let mut w = PartitionWriter::new(pid as u64, 4);
        let recs: Vec<(u64, Vec<f32>)> = (0..n)
            .map(|i| {
                let v = (pid as usize * 100 + i) as f32;
                (num_records + i as u64, vec![v, -v, v * 0.5, 1.0])
            })
            .collect();
        w.push_cluster(node, recs.iter().map(|(id, v)| (*id, v.as_slice())));
        let bytes = w.finish();
        write_file_atomic(&dir.join(partition_file_name(pid)), &bytes).unwrap();
        partitions.push(PartitionEntry {
            id: pid,
            bytes: bytes.len() as u64,
            checksum: xxh64(&bytes, 0),
            records: n as u64,
        });
        num_records += n as u64;
    }

    let skeleton_blob: Vec<u8> = (0u8..48).collect();
    write_file_atomic(&dir.join("skeleton.clsk"), &skeleton_blob).unwrap();

    Manifest {
        format_version: FORMAT_VERSION,
        config: vec![0xAA; 8],
        fingerprint: Manifest::fingerprint_of(4, num_records, &partitions),
        num_records,
        max_series_id: Some(num_records - 1),
        series_len: 4,
        generation: 0,
        journal: None,
        skeleton: FileEntry {
            bytes: skeleton_blob.len() as u64,
            checksum: xxh64(&skeleton_blob, 0),
        },
        partitions,
    }
    .write_atomic(&dir)
    .unwrap();
    dir
}

fn open(dir: &Path) -> Result<(DiskStore, Manifest), OpenError> {
    DiskStore::open_read_only(dir)
}

#[test]
fn pristine_directory_opens_and_serves() {
    let dir = persisted_dir("pristine");
    let (store, manifest) = open(&dir).unwrap();
    assert!(store.is_read_only());
    assert_eq!(store.ids(), vec![0, 1]);
    assert_eq!(manifest.num_records, 10);
    assert_eq!(manifest.partition(1).unwrap().records, 3);
    // records are readable through the validated store
    let mut out = Vec::new();
    store.read_cluster(0, 5, &mut out).unwrap();
    assert_eq!(out.len(), 7);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn scenario_1_truncated_manifest() {
    let dir = persisted_dir("trunc");
    let path = dir.join(MANIFEST_FILE);
    let bytes = fs::read(&path).unwrap();
    for cut in [bytes.len() - 1, bytes.len() / 2, 10] {
        fs::write(&path, &bytes[..cut]).unwrap();
        assert!(
            matches!(open(&dir), Err(OpenError::CorruptManifest(_))),
            "cut at {cut} not typed"
        );
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn scenario_2_flipped_byte_in_cluster_block() {
    let dir = persisted_dir("flip");
    let path = dir.join(partition_file_name(1));
    let mut bytes = fs::read(&path).unwrap();
    // deep inside the record payload of the single cluster
    let at = bytes.len() - 6;
    bytes[at] ^= 0x01;
    fs::write(&path, &bytes).unwrap();
    match open(&dir) {
        Err(OpenError::ChecksumMismatch { what, .. }) => assert_eq!(what, "partition 1"),
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn scenario_3_wrong_magic() {
    let dir = persisted_dir("magic");
    let path = dir.join(MANIFEST_FILE);
    let mut bytes = fs::read(&path).unwrap();
    bytes[0..4].copy_from_slice(b"NOPE");
    fs::write(&path, &bytes).unwrap();
    match open(&dir) {
        Err(OpenError::BadMagic { found }) => assert_eq!(&found, b"NOPE"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn scenario_4_future_format_version() {
    let dir = persisted_dir("future");
    let path = dir.join(MANIFEST_FILE);
    let mut bytes = fs::read(&path).unwrap();
    bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    // re-seal the self-checksum so the version check is what fires
    let body = bytes.len() - 8;
    let sum = xxh64(&bytes[..body], 0);
    bytes[body..].copy_from_slice(&sum.to_le_bytes());
    fs::write(&path, &bytes).unwrap();
    match open(&dir) {
        Err(OpenError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn scenario_5_missing_partition_file() {
    let dir = persisted_dir("missing");
    fs::remove_file(dir.join(partition_file_name(0))).unwrap();
    match open(&dir) {
        Err(OpenError::MissingPartition { id, path }) => {
            assert_eq!(id, 0);
            assert!(path.ends_with(partition_file_name(0)));
        }
        other => panic!("expected MissingPartition, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn grown_partition_file_is_a_size_mismatch() {
    let dir = persisted_dir("grown");
    let path = dir.join(partition_file_name(1));
    let mut bytes = fs::read(&path).unwrap();
    bytes.push(0);
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        open(&dir),
        Err(OpenError::PartitionSizeMismatch { id: 1, .. })
    ));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn read_only_store_rejects_writes_and_ignores_strays() {
    let dir = persisted_dir("ro");
    // a stray partition file not listed in the manifest
    let mut w = PartitionWriter::new(7, 4);
    w.push_cluster(1, vec![(99u64, &[0.0f32, 0.0, 0.0, 0.0][..])]);
    fs::write(dir.join(partition_file_name(7)), w.finish()).unwrap();

    let (store, _) = open(&dir).unwrap();
    assert_eq!(
        store.ids(),
        vec![0, 1],
        "stray partition must not be served"
    );
    let mut w = PartitionWriter::new(0, 4);
    w.push_cluster(2, vec![(1u64, &[0.0f32, 0.0, 0.0, 0.0][..])]);
    let err = store.put(0, w.finish()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);
    fs::remove_dir_all(&dir).ok();
}

/// The read-write open path: same validation as read-only (a damaged
/// directory is rejected identically), but `put` works — staged to a
/// `.new` sibling so the committed file a live manifest references stays
/// intact until `commit_staged` installs the replacement.
#[test]
fn read_write_open_validates_then_accepts_puts() {
    let dir = persisted_dir("rw");
    let (store, manifest) = DiskStore::open_read_write(&dir).unwrap();
    assert!(!store.is_read_only());
    assert_eq!(store.ids(), manifest.partition_ids());

    let mut w = PartitionWriter::new(0, 4);
    w.push_cluster(2, vec![(1u64, &[9.0f32, 9.0, 9.0, 9.0][..])]);
    let committed = fs::read(dir.join(partition_file_name(0))).unwrap();
    store.put(0, w.finish()).unwrap();
    // the store serves the staged bytes...
    assert_eq!(store.open(0).unwrap().record_count(), 1);
    // ...but the committed file is untouched: the put is staged beside it.
    assert_eq!(
        fs::read(dir.join(partition_file_name(0))).unwrap(),
        committed
    );
    let staged = dir.join(format!("{}.new", partition_file_name(0)));
    assert!(staged.exists(), "put must stage a .new sibling");
    // no temp droppings from the atomic stage
    let stray: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
        .collect();
    assert!(stray.is_empty(), "temp files left: {stray:?}");

    // An abandoned stage is harmless: reopening validates the committed
    // file, succeeds, and sweeps the stray `.new` — never a third state.
    {
        let (reopened, _) = DiskStore::open_read_write(&dir).unwrap();
        assert_eq!(reopened.open(0).unwrap().record_count(), 7);
    }
    assert!(!staged.exists(), "stray stage must be swept at open");

    // Re-stage and install. Now the committed file really changed under
    // the sealed manifest: until the caller re-seals, reopening is
    // rejected — the validation that makes an unsealed rewrite
    // detectable, not silent.
    let (store, _) = DiskStore::open_read_write(&dir).unwrap();
    let mut w = PartitionWriter::new(0, 4);
    w.push_cluster(2, vec![(1u64, &[9.0f32, 9.0, 9.0, 9.0][..])]);
    store.put(0, w.finish()).unwrap();
    store.commit_staged().unwrap();
    assert!(matches!(
        DiskStore::open_read_write(&dir),
        Err(OpenError::PartitionSizeMismatch { id: 0, .. } | OpenError::ChecksumMismatch { .. })
    ));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_manifest_is_typed() {
    let dir = persisted_dir("nomanifest");
    fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
    assert!(matches!(open(&dir), Err(OpenError::MissingManifest(_))));
    fs::remove_dir_all(&dir).ok();
}
