//! Property-based tests for the partition format and the cluster verbs.

use bytes::Bytes;
use climber_dfs::cluster::Cluster;
use climber_dfs::format::{PartitionReader, PartitionWriter};
use climber_dfs::store::{MemStore, PartitionStore};
use proptest::prelude::*;

/// Cluster contents: `(trie node id, records)` with records `(id, values)`.
type Clusters = Vec<(u64, Vec<(u64, Vec<f32>)>)>;

/// Strategy: clusters of records — distinct node ids, each with up to 12
/// records of width `w`.
fn clusters(w: usize) -> impl Strategy<Value = Clusters> {
    prop::collection::btree_map(
        0u64..50,
        prop::collection::vec(
            (any::<u64>(), prop::collection::vec(-1e3f32..1e3, w)),
            0..12,
        ),
        0..6,
    )
    .prop_map(|m| m.into_iter().collect())
}

proptest! {
    #[test]
    fn partition_roundtrip_preserves_everything(cs in clusters(5), group in any::<u64>()) {
        let mut w = PartitionWriter::new(group, 5);
        for (node, recs) in &cs {
            w.push_cluster(*node, recs.iter().map(|(id, v)| (*id, v.as_slice())));
        }
        let bytes = w.finish();
        let r = PartitionReader::open(bytes).unwrap();
        prop_assert_eq!(r.group_id(), group);
        prop_assert_eq!(r.series_len(), 5);
        let want_total: u64 = cs.iter().map(|(_, recs)| recs.len() as u64).sum();
        prop_assert_eq!(r.record_count(), want_total);
        for (node, recs) in &cs {
            let mut got = Vec::new();
            let n = r.for_each_in_cluster(*node, |id, vals| got.push((id, vals.to_vec())));
            prop_assert_eq!(n as usize, recs.len());
            prop_assert_eq!(&got, recs);
        }
    }

    #[test]
    fn truncation_is_always_detected(cs in clusters(3), cut_frac in 0.01f64..0.999) {
        let mut w = PartitionWriter::new(0, 3);
        for (node, recs) in &cs {
            w.push_cluster(*node, recs.iter().map(|(id, v)| (*id, v.as_slice())));
        }
        let bytes = w.finish();
        let cut = ((bytes.len() as f64 * cut_frac) as usize).min(bytes.len() - 1);
        let truncated = bytes.slice(0..cut);
        prop_assert!(PartitionReader::open(truncated).is_err());
    }

    #[test]
    fn random_bytes_never_panic_the_reader(junk in prop::collection::vec(any::<u8>(), 0..400)) {
        // opening arbitrary bytes must return Err, never panic
        let _ = PartitionReader::open(Bytes::from(junk));
    }

    #[test]
    fn shuffle_partitions_the_input(
        items in prop::collection::vec(any::<u32>(), 0..500),
        modulus in 1u32..10,
    ) {
        let c = Cluster::new(4);
        let groups = c.shuffle_by_key(items.clone(), move |&x| x % modulus);
        // every item lands in exactly one bucket, in input order
        let mut reassembled: Vec<u32> = Vec::new();
        for bucket in groups.values() {
            reassembled.extend(bucket.iter().copied());
        }
        reassembled.sort_unstable();
        let mut want = items.clone();
        want.sort_unstable();
        prop_assert_eq!(reassembled, want);
        // keys are correct
        for (k, bucket) in &groups {
            for v in bucket {
                prop_assert_eq!(v % modulus, *k);
            }
        }
    }

    #[test]
    fn par_map_equals_serial_map(items in prop::collection::vec(any::<i64>(), 0..500)) {
        let c = Cluster::new(8);
        let par: Vec<i64> = c.par_map(items.clone(), |x| x.wrapping_mul(3) ^ 7);
        let ser: Vec<i64> = items.into_iter().map(|x| x.wrapping_mul(3) ^ 7).collect();
        prop_assert_eq!(par, ser);
    }

    #[test]
    fn store_read_cluster_returns_exact_records(cs in clusters(4)) {
        let store = MemStore::new();
        let mut w = PartitionWriter::new(9, 4);
        for (node, recs) in &cs {
            w.push_cluster(*node, recs.iter().map(|(id, v)| (*id, v.as_slice())));
        }
        store.put(0, w.finish()).unwrap();
        for (node, recs) in &cs {
            let mut out = Vec::new();
            let n = store.read_cluster(0, *node, &mut out).unwrap();
            prop_assert_eq!(n as usize, recs.len());
            prop_assert_eq!(&out, recs);
        }
    }
}
