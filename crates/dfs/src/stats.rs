//! Atomic I/O accounting.
//!
//! The paper's query-cost metric is dominated by "number of partitions
//! touched" (§VII-B) and its ablation (Figure 11(b)) reports "additional
//! data access" ratios. Every store and cluster operation feeds these
//! counters so experiments can report the same quantities.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe I/O counters. Cheap to clone (an `Arc` inside).
#[derive(Debug, Clone, Default)]
pub struct IoStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    partitions_written: AtomicU64,
    partitions_opened: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    records_shuffled: AtomicU64,
    records_read: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Partitions written to a store.
    pub partitions_written: u64,
    /// Partitions opened for reading.
    pub partitions_opened: u64,
    /// Bytes written to a store.
    pub bytes_written: u64,
    /// Bytes read from a store (headers + payloads actually touched).
    pub bytes_read: u64,
    /// Records moved by shuffle operations.
    pub records_shuffled: u64,
    /// Records decoded from partitions.
    pub records_read: u64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a partition write of `bytes` bytes.
    pub fn on_partition_write(&self, bytes: u64) {
        self.inner
            .partitions_written
            .fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a partition open.
    pub fn on_partition_open(&self) {
        self.inner.partitions_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `bytes` bytes read.
    pub fn on_read(&self, bytes: u64) {
        self.inner.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `records` decoded records.
    pub fn on_records_read(&self, records: u64) {
        self.inner
            .records_read
            .fetch_add(records, Ordering::Relaxed);
    }

    /// Records `records` shuffled records.
    pub fn on_shuffle(&self, records: u64) {
        self.inner
            .records_shuffled
            .fetch_add(records, Ordering::Relaxed);
    }

    /// Snapshot of all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            partitions_written: self.inner.partitions_written.load(Ordering::Relaxed),
            partitions_opened: self.inner.partitions_opened.load(Ordering::Relaxed),
            bytes_written: self.inner.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.inner.bytes_read.load(Ordering::Relaxed),
            records_shuffled: self.inner.records_shuffled.load(Ordering::Relaxed),
            records_read: self.inner.records_read.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero (between experiment phases).
    pub fn reset(&self) {
        self.inner.partitions_written.store(0, Ordering::Relaxed);
        self.inner.partitions_opened.store(0, Ordering::Relaxed);
        self.inner.bytes_written.store(0, Ordering::Relaxed);
        self.inner.bytes_read.store(0, Ordering::Relaxed);
        self.inner.records_shuffled.store(0, Ordering::Relaxed);
        self.inner.records_read.store(0, Ordering::Relaxed);
    }
}

impl IoSnapshot {
    /// Difference of two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            partitions_written: self.partitions_written - earlier.partitions_written,
            partitions_opened: self.partitions_opened - earlier.partitions_opened,
            bytes_written: self.bytes_written - earlier.bytes_written,
            bytes_read: self.bytes_read - earlier.bytes_read,
            records_shuffled: self.records_shuffled - earlier.records_shuffled,
            records_read: self.records_read - earlier.records_read,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.on_partition_write(100);
        s.on_partition_write(50);
        s.on_partition_open();
        s.on_read(30);
        s.on_shuffle(7);
        s.on_records_read(3);
        let snap = s.snapshot();
        assert_eq!(snap.partitions_written, 2);
        assert_eq!(snap.bytes_written, 150);
        assert_eq!(snap.partitions_opened, 1);
        assert_eq!(snap.bytes_read, 30);
        assert_eq!(snap.records_shuffled, 7);
        assert_eq!(snap.records_read, 3);
    }

    #[test]
    fn clones_share_counters() {
        let a = IoStats::new();
        let b = a.clone();
        b.on_read(42);
        assert_eq!(a.snapshot().bytes_read, 42);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = IoStats::new();
        s.on_partition_write(10);
        s.on_shuffle(5);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let s = IoStats::new();
        s.on_read(10);
        let t0 = s.snapshot();
        s.on_read(25);
        let diff = s.snapshot().since(&t0);
        assert_eq!(diff.bytes_read, 25);
    }

    #[test]
    fn counters_are_thread_safe() {
        let s = IoStats::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.on_read(1);
                    }
                });
            }
        });
        assert_eq!(s.snapshot().bytes_read, 8000);
    }
}
