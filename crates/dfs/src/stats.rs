//! Atomic I/O accounting.
//!
//! The paper's query-cost metric is dominated by "number of partitions
//! touched" (§VII-B) and its ablation (Figure 11(b)) reports "additional
//! data access" ratios. Every store and cluster operation feeds these
//! counters so experiments can report the same quantities.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe I/O counters. Cheap to clone (an `Arc` inside).
#[derive(Debug, Clone, Default)]
pub struct IoStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    partitions_written: AtomicU64,
    partitions_opened: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    records_shuffled: AtomicU64,
    records_read: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Partitions written to a store.
    pub partitions_written: u64,
    /// Partitions opened for reading.
    pub partitions_opened: u64,
    /// Bytes written to a store.
    pub bytes_written: u64,
    /// Bytes read from a store (headers + payloads actually touched).
    pub bytes_read: u64,
    /// Records moved by shuffle operations.
    pub records_shuffled: u64,
    /// Records decoded from partitions.
    pub records_read: u64,
    /// Block-cache lookups served from memory (monotonic).
    pub cache_hits: u64,
    /// Block-cache lookups that had to read the filesystem (monotonic).
    pub cache_misses: u64,
    /// Blocks evicted from the cache to stay inside its budget (monotonic).
    pub cache_evictions: u64,
    /// Page-rounded bytes currently resident in the block cache (a gauge:
    /// [`since`](Self::since) passes the later value through unchanged).
    pub cache_resident_bytes: u64,
    /// Decompressed bytes of resident blocks (gauge).
    pub cache_raw_bytes: u64,
    /// On-disk bytes of resident blocks (gauge; smaller than
    /// `cache_raw_bytes` when compression is saving disk space).
    pub cache_stored_bytes: u64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a partition write of `bytes` bytes.
    pub fn on_partition_write(&self, bytes: u64) {
        self.inner
            .partitions_written
            .fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a partition open.
    pub fn on_partition_open(&self) {
        self.inner.partitions_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `bytes` bytes read.
    pub fn on_read(&self, bytes: u64) {
        self.inner.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `records` decoded records.
    pub fn on_records_read(&self, records: u64) {
        self.inner
            .records_read
            .fetch_add(records, Ordering::Relaxed);
    }

    /// Records `records` shuffled records.
    pub fn on_shuffle(&self, records: u64) {
        self.inner
            .records_shuffled
            .fetch_add(records, Ordering::Relaxed);
    }

    /// Snapshot of all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            partitions_written: self.inner.partitions_written.load(Ordering::Relaxed),
            partitions_opened: self.inner.partitions_opened.load(Ordering::Relaxed),
            bytes_written: self.inner.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.inner.bytes_read.load(Ordering::Relaxed),
            records_shuffled: self.inner.records_shuffled.load(Ordering::Relaxed),
            records_read: self.inner.records_read.load(Ordering::Relaxed),
            ..IoSnapshot::default()
        }
    }

    /// Resets every counter to zero (between experiment phases).
    pub fn reset(&self) {
        self.inner.partitions_written.store(0, Ordering::Relaxed);
        self.inner.partitions_opened.store(0, Ordering::Relaxed);
        self.inner.bytes_written.store(0, Ordering::Relaxed);
        self.inner.bytes_read.store(0, Ordering::Relaxed);
        self.inner.records_shuffled.store(0, Ordering::Relaxed);
        self.inner.records_read.store(0, Ordering::Relaxed);
    }
}

impl IoSnapshot {
    /// Difference of two snapshots (`self` taken after `earlier`).
    /// Monotonic counters subtract; the cache residency gauges pass
    /// through `self`'s current values (a gauge difference would be
    /// meaningless — residency is a level, not a flow).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            partitions_written: self.partitions_written - earlier.partitions_written,
            partitions_opened: self.partitions_opened - earlier.partitions_opened,
            bytes_written: self.bytes_written - earlier.bytes_written,
            bytes_read: self.bytes_read - earlier.bytes_read,
            records_shuffled: self.records_shuffled - earlier.records_shuffled,
            records_read: self.records_read - earlier.records_read,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            cache_evictions: self.cache_evictions - earlier.cache_evictions,
            cache_resident_bytes: self.cache_resident_bytes,
            cache_raw_bytes: self.cache_raw_bytes,
            cache_stored_bytes: self.cache_stored_bytes,
        }
    }

    /// Overlays a block cache's counters and gauges onto this snapshot —
    /// the cache lives beside the store's `IoStats`, so index-level
    /// `serve_io()` views merge the two here.
    pub fn with_cache(mut self, cache: &crate::page::BlockCacheStats) -> IoSnapshot {
        self.cache_hits = cache.hits;
        self.cache_misses = cache.misses;
        self.cache_evictions = cache.evictions;
        self.cache_resident_bytes = cache.resident_bytes;
        self.cache_raw_bytes = cache.raw_bytes;
        self.cache_stored_bytes = cache.stored_bytes;
        self
    }

    /// On-disk ÷ in-memory size of resident cached blocks: 1.0 when the
    /// cache is empty or uncompressed, below 1.0 when compression helps.
    pub fn cache_compressed_ratio(&self) -> f64 {
        if self.cache_raw_bytes == 0 {
            1.0
        } else {
            self.cache_stored_bytes as f64 / self.cache_raw_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.on_partition_write(100);
        s.on_partition_write(50);
        s.on_partition_open();
        s.on_read(30);
        s.on_shuffle(7);
        s.on_records_read(3);
        let snap = s.snapshot();
        assert_eq!(snap.partitions_written, 2);
        assert_eq!(snap.bytes_written, 150);
        assert_eq!(snap.partitions_opened, 1);
        assert_eq!(snap.bytes_read, 30);
        assert_eq!(snap.records_shuffled, 7);
        assert_eq!(snap.records_read, 3);
    }

    #[test]
    fn clones_share_counters() {
        let a = IoStats::new();
        let b = a.clone();
        b.on_read(42);
        assert_eq!(a.snapshot().bytes_read, 42);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = IoStats::new();
        s.on_partition_write(10);
        s.on_shuffle(5);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let s = IoStats::new();
        s.on_read(10);
        let t0 = s.snapshot();
        s.on_read(25);
        let diff = s.snapshot().since(&t0);
        assert_eq!(diff.bytes_read, 25);
    }

    #[test]
    fn cache_fields_overlay_and_diff() {
        let cache = crate::page::BlockCacheStats {
            hits: 10,
            misses: 4,
            evictions: 2,
            warmed_bytes: 0,
            resident_bytes: 1 << 20,
            raw_bytes: 1000,
            stored_bytes: 250,
        };
        let t0 = IoSnapshot::default().with_cache(&crate::page::BlockCacheStats {
            hits: 3,
            ..Default::default()
        });
        let t1 = IoSnapshot::default().with_cache(&cache);
        let diff = t1.since(&t0);
        assert_eq!(diff.cache_hits, 7, "counters subtract");
        assert_eq!(diff.cache_misses, 4);
        assert_eq!(diff.cache_resident_bytes, 1 << 20, "gauges pass through");
        assert!((t1.cache_compressed_ratio() - 0.25).abs() < 1e-12);
        assert!((IoSnapshot::default().cache_compressed_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counters_are_thread_safe() {
        let s = IoStats::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.on_read(1);
                    }
                });
            }
        });
        assert_eq!(s.snapshot().bytes_read, 8000);
    }
}
