//! Partition stores: where encoded partitions live.
//!
//! Two implementations behind one trait:
//! * [`MemStore`] — partitions in a concurrent map; models the paper's
//!   comparison against main-memory engines and keeps unit tests fast;
//! * [`DiskStore`] — one file per partition under a directory, the
//!   disk-based HDFS stand-in (CLIMBER is explicitly a *disk-based*
//!   system, §II).
//!
//! Every operation reports to an [`IoStats`], which is how experiments
//! observe "partitions touched" and bytes moved.

use crate::format::PartitionReader;
use crate::fsio::{self, ClimberFs, FsRef};
use crate::manifest::{xxh64, Manifest, OpenError, PartitionEntry};
use crate::page::{self, BlockCache};
use crate::stats::IoStats;
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// File name of partition `id` inside an index directory.
pub fn partition_file_name(id: PartitionId) -> String {
    format!("part_{id:08}.clbp")
}

/// Subdirectory a quarantining open moves failed-validation partition
/// files into, preserving the evidence for a later
/// [`try_readmit`](DiskStore::try_readmit) or operator repair.
pub const QUARANTINE_DIR: &str = "QUARANTINE";

/// The roll-forward staging sibling of partition `id`: a manifest-mode
/// `put` lands here, and the rename over the main file happens only
/// *after* the next manifest commit — so a crash anywhere in a fold
/// leaves the committed file untouched.
fn staged_path_of(dir: &Path, id: PartitionId) -> PathBuf {
    dir.join(format!("{}.new", partition_file_name(id)))
}

fn quarantine_path_of(dir: &Path, id: PartitionId) -> PathBuf {
    dir.join(QUARANTINE_DIR).join(partition_file_name(id))
}

/// Identifier of a physical partition (the paper's `β` ids).
pub type PartitionId = u32;

/// A store of encoded partitions keyed by [`PartitionId`].
pub trait PartitionStore: Send + Sync {
    /// Writes (or replaces) a partition.
    fn put(&self, id: PartitionId, bytes: Bytes) -> io::Result<()>;

    /// Opens a partition for reading. Counts the open and the header bytes.
    fn open(&self, id: PartitionId) -> io::Result<PartitionReader>;

    /// All stored partition ids, ascending.
    fn ids(&self) -> Vec<PartitionId>;

    /// Number of stored partitions.
    fn len(&self) -> usize {
        self.ids().len()
    }

    /// True when the store holds no partitions.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The stats sink this store reports to.
    fn stats(&self) -> &IoStats;

    /// The directory this store persists partitions into, when it is
    /// disk-backed. A flush re-seals the manifest there after rewriting
    /// partitions so the on-disk directory stays openable; in-memory
    /// stores return `None` and need no re-seal.
    fn persist_dir(&self) -> Option<&std::path::Path> {
        None
    }

    /// True when [`put`](Self::put) already lands partitions in
    /// [`persist_dir`](Self::persist_dir) through the durable temp-file +
    /// fsync + atomic-rename protocol — a seal of that directory can then
    /// checksum the files in place instead of re-copying them.
    fn puts_are_durable(&self) -> bool {
        false
    }

    /// The filesystem this store performs durable operations through.
    /// In-memory stores return the process default.
    fn fs(&self) -> FsRef {
        fsio::std_fs()
    }

    /// Installs every staged (`.new`) partition over its committed main
    /// file — called by the seal *after* the manifest commit point. A
    /// no-op for stores without a staging protocol.
    fn commit_staged(&self) -> io::Result<()> {
        Ok(())
    }

    /// Partitions a quarantining open moved aside; opens of these ids
    /// fail until [`DiskStore::try_readmit`] repairs them. Empty for
    /// stores without quarantine support.
    fn quarantined(&self) -> Vec<PartitionId> {
        Vec::new()
    }

    /// The **exact persisted bytes** of a partition — what a seal must
    /// checksum and copy. For stores holding partitions verbatim this is
    /// the open image; stores with a compressed on-disk representation
    /// override it to return the stored (compressed) bytes, which the
    /// decode path never sees. Performs no I/O accounting: sealing
    /// attributes its reads to the open that accompanies it.
    fn stored_bytes(&self, id: PartitionId) -> io::Result<Bytes> {
        Ok(self.open(id)?.raw_bytes_owned())
    }

    /// True when [`put`](Self::put) lands partitions in the compressed
    /// (CLBP v2) on-disk format; a seal copying into a fresh directory
    /// then compresses its payloads to match the store's own files.
    fn compresses_puts(&self) -> bool {
        false
    }

    /// The block cache serving this store's opens, when one is attached;
    /// the serving layer overlays its counters onto I/O snapshots.
    fn block_cache(&self) -> Option<Arc<BlockCache>> {
        None
    }

    /// An owned zero-copy view of one cluster — a single open plus a
    /// refcounted slice, no record memcpy. Counts the cluster's bytes and
    /// records as read, exactly like the decoding reads.
    fn cluster_view(
        &self,
        id: PartitionId,
        node: crate::format::TrieNodeId,
    ) -> io::Result<Option<crate::page::ClusterView>> {
        let reader = self.open(id)?;
        let Some(view) = reader.cluster_view(node) else {
            return Ok(None);
        };
        self.stats()
            .on_read((view.len() * (8 + reader.series_len() * 4)) as u64);
        self.stats().on_records_read(view.len() as u64);
        Ok(Some(view))
    }

    /// Reads the records of one trie-node cluster, counting only the bytes
    /// of that cluster (plus the header) as read.
    fn read_cluster(
        &self,
        id: PartitionId,
        node: crate::format::TrieNodeId,
        out: &mut Vec<(u64, Vec<f32>)>,
    ) -> io::Result<u64> {
        let reader = self.open(id)?;
        let bytes = reader.cluster_bytes(node).unwrap_or(0);
        let n = reader.for_each_in_cluster(node, |rid, vals| out.push((rid, vals.to_vec())));
        self.stats().on_read(bytes as u64);
        self.stats().on_records_read(n);
        Ok(n)
    }

    /// Decodes several clusters of one partition into a caller-provided
    /// reuse buffer in a single open, appending in the order given and
    /// counting each cluster's bytes as read. Returns the record count
    /// appended. Absent clusters contribute nothing.
    ///
    /// This is the store-level convenience for partition-major access —
    /// one open, no per-record allocation (unlike
    /// [`read_cluster`](Self::read_cluster), which re-allocates a
    /// `Vec<f32>` per record). The batched query engine needs per-cluster
    /// interleaving (prefilter + scoring between decodes), so it holds the
    /// [`PartitionReader`] itself and calls
    /// [`PartitionReader::read_cluster_into`] directly; callers without
    /// that constraint should prefer this method.
    fn read_clusters_into(
        &self,
        id: PartitionId,
        nodes: &[crate::format::TrieNodeId],
        buf: &mut crate::format::ClusterBuf,
    ) -> io::Result<u64> {
        let reader = self.open(id)?;
        let mut n = 0u64;
        let mut bytes = 0u64;
        for &node in nodes {
            bytes += reader.cluster_bytes(node).unwrap_or(0) as u64;
            n += reader.read_cluster_into(node, buf);
        }
        self.stats().on_read(bytes);
        self.stats().on_records_read(n);
        Ok(n)
    }
}

/// In-memory partition store.
#[derive(Debug, Default)]
pub struct MemStore {
    parts: RwLock<BTreeMap<PartitionId, Bytes>>,
    stats: IoStats,
}

impl MemStore {
    /// Creates an empty store with fresh stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store reporting to existing stats.
    pub fn with_stats(stats: IoStats) -> Self {
        Self {
            parts: RwLock::new(BTreeMap::new()),
            stats,
        }
    }

    /// Total bytes held across partitions.
    pub fn total_bytes(&self) -> u64 {
        self.parts.read().values().map(|b| b.len() as u64).sum()
    }
}

impl PartitionStore for MemStore {
    fn put(&self, id: PartitionId, bytes: Bytes) -> io::Result<()> {
        self.stats.on_partition_write(bytes.len() as u64);
        self.parts.write().insert(id, bytes);
        Ok(())
    }

    fn open(&self, id: PartitionId) -> io::Result<PartitionReader> {
        let bytes =
            self.parts.read().get(&id).cloned().ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("partition {id}"))
            })?;
        self.stats.on_partition_open();
        let reader = PartitionReader::open(bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.stats.on_read(reader.header_bytes() as u64);
        Ok(reader)
    }

    fn ids(&self) -> Vec<PartitionId> {
        self.parts.read().keys().copied().collect()
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

/// On-disk partition store: `<dir>/part_<id>.clbp`.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    stats: IoStats,
    /// `Some` when opened from a manifest: the manifest-listed partition
    /// ids, used instead of a directory scan so stray files are never
    /// served.
    manifest_ids: Option<Vec<PartitionId>>,
    /// True when opened via [`open_read_only`](Self::open_read_only):
    /// every [`put`](PartitionStore::put) is rejected.
    read_only: bool,
    /// The filesystem every durable operation goes through (injectable).
    fs: FsRef,
    /// Partitions whose rewrite is staged under a `.new` sibling awaiting
    /// the next manifest commit; [`PartitionStore::open`] serves the
    /// staged bytes so readers in this process see the rewrite.
    staged: RwLock<BTreeSet<PartitionId>>,
    /// Partitions a quarantining open (or a scrub) moved aside; opening
    /// them fails with `NotFound` until repaired.
    quarantined: RwLock<BTreeSet<PartitionId>>,
    /// Block-cache attachment: the shared cache plus this store's token
    /// (the namespace its partition ids live under in the cache).
    cache: RwLock<Option<StoreCache>>,
    /// When set, [`put`](PartitionStore::put) transcodes partitions into
    /// the compressed CLBP v2 format before writing. Set explicitly by
    /// `CacheConfig::compress` or automatically when a validated open
    /// finds compressed files, so rewrites never silently decompress an
    /// index.
    compress_puts: AtomicBool,
}

/// A [`DiskStore`]'s handle into a shared [`BlockCache`].
#[derive(Debug, Clone)]
struct StoreCache {
    cache: Arc<BlockCache>,
    token: u64,
}

impl DiskStore {
    /// Opens (creating if needed) a writable store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Self::with_stats(dir, IoStats::new())
    }

    /// Opens a writable store reporting to existing stats.
    pub fn with_stats(dir: impl Into<PathBuf>, stats: IoStats) -> io::Result<Self> {
        Self::with_stats_fs(dir, stats, fsio::std_fs())
    }

    /// Opens a writable store through an injectable filesystem.
    pub fn with_fs(dir: impl Into<PathBuf>, fs: FsRef) -> io::Result<Self> {
        Self::with_stats_fs(dir, IoStats::new(), fs)
    }

    fn with_stats_fs(dir: impl Into<PathBuf>, stats: IoStats, fs: FsRef) -> io::Result<Self> {
        let dir = dir.into();
        fs.create_dir_all(&dir)?;
        Ok(Self {
            dir,
            stats,
            manifest_ids: None,
            read_only: false,
            fs,
            staged: RwLock::new(BTreeSet::new()),
            quarantined: RwLock::new(BTreeSet::new()),
            cache: RwLock::new(None),
            compress_puts: AtomicBool::new(false),
        })
    }

    /// Attaches a shared [`BlockCache`]: subsequent opens of committed,
    /// unquarantined partitions are served from (and fill) the cache
    /// under a fresh store token. Rewrites, quarantines, and
    /// re-admissions invalidate the affected entry.
    pub fn attach_cache(&self, cache: Arc<BlockCache>) {
        *self.cache.write() = Some(StoreCache {
            cache,
            token: page::next_store_token(),
        });
    }

    /// The attached block cache, if any.
    pub fn block_cache(&self) -> Option<Arc<BlockCache>> {
        self.cache.read().as_ref().map(|sc| Arc::clone(&sc.cache))
    }

    fn cache_handle(&self) -> Option<StoreCache> {
        self.cache.read().clone()
    }

    /// Turns compressed (CLBP v2) partition writes on or off.
    pub fn set_compress_puts(&self, on: bool) {
        self.compress_puts.store(on, Ordering::Relaxed);
    }

    /// True when puts are written in the compressed format.
    pub fn compresses_puts(&self) -> bool {
        self.compress_puts.load(Ordering::Relaxed)
    }

    /// Opens a persisted index directory **read-only**, validating every
    /// partition file against the manifest: existence, byte range, and
    /// content checksum. Returns the store plus the validated manifest.
    ///
    /// This is the serve-side cold-start path: any corruption or
    /// incompleteness surfaces here as a typed [`OpenError`] instead of a
    /// wrong answer later. [`put`](PartitionStore::put) on the returned
    /// store fails with `PermissionDenied`; an index that must keep
    /// absorbing updates goes through
    /// [`open_read_write`](Self::open_read_write) instead.
    pub fn open_read_only(dir: impl Into<PathBuf>) -> Result<(Self, Manifest), OpenError> {
        Self::open_validated_with(dir.into(), true, fsio::std_fs(), false)
    }

    /// Opens a persisted index directory with the exact validation of
    /// [`open_read_only`](Self::open_read_only), but with
    /// [`put`](PartitionStore::put) enabled — the path a flush/compaction
    /// needs to fold pending updates back into the sealed partitions.
    /// Partition ids are still served from the manifest, so stray files
    /// are never picked up.
    pub fn open_read_write(dir: impl Into<PathBuf>) -> Result<(Self, Manifest), OpenError> {
        Self::open_validated_with(dir.into(), false, fsio::std_fs(), false)
    }

    /// [`open_read_only`](Self::open_read_only) /
    /// [`open_read_write`](Self::open_read_write) through an injectable
    /// filesystem, optionally in **quarantine mode**: instead of the
    /// first failing partition aborting the open, the bad file is moved
    /// into [`QUARANTINE_DIR`] and recorded, and the store opens serving
    /// every partition that did validate (a degraded open; see
    /// [`quarantined`](PartitionStore::quarantined)).
    pub fn open_validated_with(
        dir: PathBuf,
        read_only: bool,
        fs: FsRef,
        quarantine: bool,
    ) -> Result<(Self, Manifest), OpenError> {
        let (store, manifest, _) =
            Self::open_validated_cached(dir, read_only, fs, quarantine, None)?;
        Ok((store, manifest))
    }

    /// [`open_validated_with`](Self::open_validated_with) plus a shared
    /// [`BlockCache`]: each partition's cold-open validation read — which
    /// the cacheless path checksums and discards — is decompressed and
    /// fed into the cache ([`BlockCache::try_warm`]: warming never evicts
    /// what another index already holds). Returns the store, the
    /// manifest, and the warmed byte count for the recovery report.
    pub fn open_validated_cached(
        dir: PathBuf,
        read_only: bool,
        fs: FsRef,
        quarantine: bool,
        cache: Option<Arc<BlockCache>>,
    ) -> Result<(Self, Manifest, u64), OpenError> {
        Self::open_validated(dir, read_only, fs, quarantine, cache)
    }

    /// Validates one manifest entry's main file through `fs`, returning
    /// the validated bytes so cold-open callers can reuse (rather than
    /// discard) the read — see the cache-warming in
    /// [`open_validated_cached`](Self::open_validated_cached).
    fn validate_entry(
        fs: &dyn ClimberFs,
        path: &Path,
        e: &PartitionEntry,
    ) -> Result<Vec<u8>, OpenError> {
        let bytes = match fs.read(path) {
            Ok(b) => b,
            Err(err) if err.kind() == io::ErrorKind::NotFound => {
                return Err(OpenError::MissingPartition {
                    id: e.id,
                    path: path.to_path_buf(),
                })
            }
            Err(err) => return Err(OpenError::Io(err)),
        };
        if bytes.len() as u64 != e.bytes {
            return Err(OpenError::PartitionSizeMismatch {
                id: e.id,
                expected: e.bytes,
                found: bytes.len() as u64,
            });
        }
        let found = xxh64(&bytes, 0);
        if found != e.checksum {
            return Err(OpenError::ChecksumMismatch {
                what: format!("partition {}", e.id),
                expected: e.checksum,
                found,
            });
        }
        Ok(bytes)
    }

    fn open_validated(
        dir: PathBuf,
        read_only: bool,
        fs: FsRef,
        quarantine: bool,
        cache: Option<Arc<BlockCache>>,
    ) -> Result<(Self, Manifest, u64), OpenError> {
        let manifest = Manifest::load_with(&*fs, &dir)?;
        let mut quarantined = BTreeSet::new();
        let warming = cache.map(|c| (c, page::next_store_token()));
        let mut warmed_bytes = 0u64;
        let mut saw_compressed = false;
        for e in &manifest.partitions {
            let path = dir.join(partition_file_name(e.id));
            let staged = staged_path_of(&dir, e.id);
            match Self::validate_entry(&*fs, &path, e) {
                Ok(bytes) => {
                    // Any `.new` sibling is pre-commit garbage from an
                    // interrupted fold — the committed file matches the
                    // committed manifest.
                    fs.remove_file(&staged).ok();
                    if page::is_compressed(&bytes) {
                        saw_compressed = true;
                    }
                    // Reuse the validation read: decompress once here and
                    // warm the cache so first-query latency after a cold
                    // open skips the filesystem entirely.
                    if let Some((cache, token)) = &warming {
                        if let Ok((image, stored_len)) = page::maybe_decompress(Bytes::from(bytes))
                        {
                            let raw_len = image.len() as u64;
                            if cache.try_warm(*token, e.id, image, stored_len) {
                                warmed_bytes += raw_len;
                            }
                        }
                    }
                }
                Err(first) => {
                    // Roll forward: a crash between the manifest commit
                    // and the staged-file install leaves the *new* bytes
                    // under `.new` while the main file is still old (or
                    // gone). If the sibling matches the committed entry,
                    // finish the interrupted rename.
                    let rolled = match fs.read(&staged) {
                        Ok(b) if b.len() as u64 == e.bytes && xxh64(&b, 0) == e.checksum => {
                            fs.rename(&staged, &path).is_ok() && {
                                fs.fsync_dir(&dir).ok();
                                true
                            }
                        }
                        _ => false,
                    };
                    if rolled {
                        continue;
                    }
                    if !quarantine {
                        return Err(first);
                    }
                    // Quarantine mode: preserve the bad bytes aside and
                    // serve the rest of the index degraded.
                    fs.create_dir_all(&dir.join(QUARANTINE_DIR)).ok();
                    fs.rename(&path, &quarantine_path_of(&dir, e.id)).ok();
                    fs.remove_file(&staged).ok();
                    quarantined.insert(e.id);
                }
            }
        }
        // Sweep temp droppings from interrupted atomic writes.
        if let Ok(entries) = fs::read_dir(&dir) {
            for entry in entries.filter_map(|x| x.ok()) {
                if let Some(name) = entry.file_name().to_str() {
                    if fsio::is_tmp_name(name) {
                        fs.remove_file(&entry.path()).ok();
                    }
                }
            }
        }
        let ids = manifest.partition_ids();
        Ok((
            Self {
                dir,
                stats: IoStats::new(),
                manifest_ids: Some(ids),
                read_only,
                fs,
                staged: RwLock::new(BTreeSet::new()),
                quarantined: RwLock::new(quarantined),
                cache: RwLock::new(warming.map(|(cache, token)| StoreCache { cache, token })),
                compress_puts: AtomicBool::new(saw_compressed),
            },
            manifest,
            warmed_bytes,
        ))
    }

    /// True when the store was opened read-only from a manifest.
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    fn path_of(&self, id: PartitionId) -> PathBuf {
        self.dir.join(partition_file_name(id))
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Moves partition `id`'s main file into [`QUARANTINE_DIR`] and marks
    /// it quarantined — the scrub path for corruption found *after* open.
    /// Opening the id then fails until [`try_readmit`](Self::try_readmit)
    /// succeeds.
    pub fn quarantine_partition(&self, id: PartitionId) -> io::Result<()> {
        self.fs.create_dir_all(&self.dir.join(QUARANTINE_DIR))?;
        match self
            .fs
            .rename(&self.path_of(id), &quarantine_path_of(&self.dir, id))
        {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        self.quarantined.write().insert(id);
        if let Some(sc) = self.cache_handle() {
            sc.cache.invalidate(sc.token, id);
        }
        Ok(())
    }

    /// Attempts to bring a quarantined partition back into service:
    /// either the main path now holds bytes matching the manifest entry
    /// (operator restored them), or the quarantined copy itself validates
    /// (the original failure was transient) and is renamed back. Returns
    /// `true` when the partition is healthy and serving again.
    pub fn try_readmit(&self, e: &PartitionEntry) -> io::Result<bool> {
        if !self.quarantined.read().contains(&e.id) {
            return Ok(true);
        }
        let main = self.path_of(e.id);
        let matches = |b: &[u8]| b.len() as u64 == e.bytes && xxh64(b, 0) == e.checksum;
        let readmit = |id: PartitionId| {
            self.quarantined.write().remove(&id);
            if let Some(sc) = self.cache_handle() {
                sc.cache.invalidate(sc.token, id);
            }
        };
        if self.fs.read(&main).is_ok_and(|b| matches(&b)) {
            readmit(e.id);
            return Ok(true);
        }
        let qpath = quarantine_path_of(&self.dir, e.id);
        if self.fs.read(&qpath).is_ok_and(|b| matches(&b)) {
            self.fs.rename(&qpath, &main)?;
            self.fs.fsync_dir(&self.dir)?;
            readmit(e.id);
            return Ok(true);
        }
        Ok(false)
    }

    /// Re-validates the committed bytes of `entry` against its manifest
    /// record — the scrub primitive for partitions not under quarantine.
    pub fn verify_partition(&self, e: &PartitionEntry) -> Result<(), OpenError> {
        Self::validate_entry(&*self.fs, &self.path_of(e.id), e).map(|_| ())
    }
}

impl PartitionStore for DiskStore {
    fn compresses_puts(&self) -> bool {
        DiskStore::compresses_puts(self)
    }

    fn block_cache(&self) -> Option<Arc<BlockCache>> {
        DiskStore::block_cache(self)
    }

    fn put(&self, id: PartitionId, bytes: Bytes) -> io::Result<()> {
        if self.is_read_only() {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "store was opened read-only from a manifest",
            ));
        }
        // Compressed stores transcode on the way down, so decode paths —
        // which always see the v1 image — never meet v2 bytes.
        let bytes = if self.compresses_puts() && !page::is_compressed(&bytes) {
            page::compress_partition(&bytes)?
        } else {
            bytes
        };
        self.stats.on_partition_write(bytes.len() as u64);
        let result = if self.manifest_ids.is_some() {
            // Opened from a sealed manifest (read-write mode): the file
            // being replaced is referenced by a live, committed manifest,
            // so the rewrite is *staged* under a `.new` sibling (written
            // durably) and only renamed over the committed file by
            // `commit_staged`, after the next manifest commit. A crash
            // anywhere before that commit leaves the committed directory
            // byte-identical; a crash after it is rolled forward at open.
            fsio::write_file_atomic_with(&*self.fs, &staged_path_of(&self.dir, id), &bytes).map(
                |()| {
                    self.staged.write().insert(id);
                },
            )
        } else {
            // Build mode: the directory is not yet a committed index, a
            // bare write is fine (the first seal copies durably).
            self.fs.write(&self.path_of(id), &bytes)
        };
        // The old image is stale either way (staged opens serve the
        // sibling; build-mode opens the new file).
        if let Some(sc) = self.cache_handle() {
            sc.cache.invalidate(sc.token, id);
        }
        result
    }

    fn open(&self, id: PartitionId) -> io::Result<PartitionReader> {
        if self.quarantined.read().contains(&id) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("partition {id} is quarantined"),
            ));
        }
        let staged = self.staged.read().contains(&id);
        // Staged (pre-commit) bytes never enter the cache: they are not
        // the committed image yet and are replaced at the next commit.
        let cached = if staged { None } else { self.cache_handle() };
        if let Some(sc) = &cached {
            if let Some(image) = sc.cache.get(sc.token, id) {
                self.stats.on_partition_open();
                let reader = PartitionReader::open(image)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                self.stats.on_read(reader.header_bytes() as u64);
                return Ok(reader);
            }
        }
        let path = if staged {
            staged_path_of(&self.dir, id)
        } else {
            self.path_of(id)
        };
        let raw = Bytes::from(self.fs.read(&path)?);
        // Compressed partitions decompress exactly once here; the cache
        // then pins the decoded image so later touches skip both the
        // filesystem and the decode.
        let (image, stored_len) = page::maybe_decompress(raw)?;
        self.stats.on_partition_open();
        let reader = PartitionReader::open(image.clone())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.stats.on_read(reader.header_bytes() as u64);
        if let Some(sc) = &cached {
            sc.cache.insert(sc.token, id, image, stored_len);
        }
        Ok(reader)
    }

    fn stored_bytes(&self, id: PartitionId) -> io::Result<Bytes> {
        if self.quarantined.read().contains(&id) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("partition {id} is quarantined"),
            ));
        }
        let path = if self.staged.read().contains(&id) {
            staged_path_of(&self.dir, id)
        } else {
            self.path_of(id)
        };
        Ok(Bytes::from(self.fs.read(&path)?))
    }

    fn persist_dir(&self) -> Option<&std::path::Path> {
        Some(&self.dir)
    }

    fn puts_are_durable(&self) -> bool {
        // Manifest-opened stores stage partition rewrites durably (see
        // `put`); plain writable stores use bare writes and need the
        // seal-time copy for durability.
        self.manifest_ids.is_some()
    }

    fn fs(&self) -> FsRef {
        self.fs.clone()
    }

    fn commit_staged(&self) -> io::Result<()> {
        let pending: Vec<PartitionId> = self.staged.read().iter().copied().collect();
        if pending.is_empty() {
            return Ok(());
        }
        let cache = self.cache_handle();
        for id in &pending {
            self.fs
                .rename(&staged_path_of(&self.dir, *id), &self.path_of(*id))?;
            self.staged.write().remove(id);
            if let Some(sc) = &cache {
                sc.cache.invalidate(sc.token, *id);
            }
        }
        self.fs.fsync_dir(&self.dir)
    }

    fn quarantined(&self) -> Vec<PartitionId> {
        self.quarantined.read().iter().copied().collect()
    }

    fn ids(&self) -> Vec<PartitionId> {
        if let Some(ids) = &self.manifest_ids {
            return ids.clone();
        }
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut ids: Vec<PartitionId> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_str()?;
                let num = name.strip_prefix("part_")?.strip_suffix(".clbp")?;
                num.parse().ok()
            })
            .collect();
        ids.sort_unstable();
        ids
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::PartitionWriter;

    fn encode_partition(group: u64, node: u64, n: usize) -> Bytes {
        let mut w = PartitionWriter::new(group, 2);
        let recs: Vec<(u64, Vec<f32>)> = (0..n)
            .map(|i| (i as u64, vec![i as f32, -(i as f32)]))
            .collect();
        w.push_cluster(node, recs.iter().map(|(id, v)| (*id, v.as_slice())));
        w.finish()
    }

    #[test]
    fn read_clusters_into_single_open_and_counts() {
        let store = MemStore::new();
        let mut w = PartitionWriter::new(1, 2);
        let a: Vec<(u64, Vec<f32>)> = (0..3).map(|i| (i, vec![i as f32, 0.0])).collect();
        let b: Vec<(u64, Vec<f32>)> = (10..12).map(|i| (i, vec![i as f32, 1.0])).collect();
        w.push_cluster(1, a.iter().map(|(id, v)| (*id, v.as_slice())));
        w.push_cluster(2, b.iter().map(|(id, v)| (*id, v.as_slice())));
        store.put(0, w.finish()).unwrap();

        let before = store.stats().snapshot();
        let mut buf = crate::format::ClusterBuf::new();
        let n = store.read_clusters_into(0, &[1, 2, 42], &mut buf).unwrap();
        assert_eq!(n, 5);
        assert_eq!(buf.len(), 5);
        assert_eq!(buf.get(3), (10, &[10.0f32, 1.0][..]));
        let diff = store.stats().snapshot().since(&before);
        assert_eq!(diff.partitions_opened, 1, "one open for many clusters");
        assert_eq!(diff.records_read, 5);
        // 5 records × (8 id bytes + 2 × 4 value bytes) + header
        assert_eq!(diff.bytes_read as usize, 5 * 16 + 24 + 2 * 20);
        assert!(store
            .read_clusters_into(99, &[1], &mut buf)
            .is_err_and(|e| e.kind() == std::io::ErrorKind::NotFound));
    }

    fn exercise_store<S: PartitionStore>(store: &S) {
        store.put(5, encode_partition(1, 10, 3)).unwrap();
        store.put(2, encode_partition(2, 20, 1)).unwrap();
        assert_eq!(store.ids(), vec![2, 5]);
        assert_eq!(store.len(), 2);

        let r = store.open(5).unwrap();
        assert_eq!(r.group_id(), 1);
        assert_eq!(r.record_count(), 3);

        let mut out = Vec::new();
        let n = store.read_cluster(5, 10, &mut out).unwrap();
        assert_eq!(n, 3);
        assert_eq!(out[2], (2, vec![2.0, -2.0]));

        assert!(store.open(99).is_err());

        let snap = store.stats().snapshot();
        assert_eq!(snap.partitions_written, 2);
        // open(5) in test + open inside read_cluster
        assert_eq!(snap.partitions_opened, 2);
        assert!(snap.bytes_read > 0);
        assert_eq!(snap.records_read, 3);
    }

    #[test]
    fn mem_store_behaviour() {
        exercise_store(&MemStore::new());
    }

    #[test]
    fn disk_store_behaviour() {
        let dir = std::env::temp_dir().join(format!("climber-dfs-test-{}", std::process::id()));
        let store = DiskStore::new(&dir).unwrap();
        exercise_store(&store);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_store_ids_survive_reopen() {
        let dir = std::env::temp_dir().join(format!("climber-dfs-reopen-{}", std::process::id()));
        {
            let store = DiskStore::new(&dir).unwrap();
            store.put(7, encode_partition(0, 1, 2)).unwrap();
        }
        let store2 = DiskStore::new(&dir).unwrap();
        assert_eq!(store2.ids(), vec![7]);
        let r = store2.open(7).unwrap();
        assert_eq!(r.record_count(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_store_total_bytes() {
        let store = MemStore::new();
        let b = encode_partition(0, 1, 4);
        let len = b.len() as u64;
        store.put(0, b).unwrap();
        assert_eq!(store.total_bytes(), len);
    }

    /// The parallel build writes distinct partitions from many threads at
    /// once through `&self` puts; both backends and the shared [`IoStats`]
    /// must hold up under that fan-out.
    fn exercise_concurrent_puts<S: PartitionStore>(store: &S) {
        rayon::scope(|s| {
            for pid in 0..16u32 {
                s.spawn(move |_| {
                    store
                        .put(pid, encode_partition(pid as u64, 1, 1 + pid as usize % 4))
                        .unwrap();
                });
            }
        });
        assert_eq!(store.ids(), (0..16).collect::<Vec<_>>());
        assert_eq!(store.stats().snapshot().partitions_written, 16);
        for pid in store.ids() {
            assert_eq!(store.open(pid).unwrap().group_id(), pid as u64);
        }
    }

    #[test]
    fn mem_store_concurrent_puts() {
        exercise_concurrent_puts(&MemStore::new());
    }

    #[test]
    fn disk_store_concurrent_puts() {
        let dir = std::env::temp_dir().join(format!("climber-dfs-conc-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        let store = DiskStore::new(&dir).unwrap();
        exercise_concurrent_puts(&store);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn put_replaces_partition() {
        let store = MemStore::new();
        store.put(1, encode_partition(0, 1, 2)).unwrap();
        store.put(1, encode_partition(0, 1, 5)).unwrap();
        assert_eq!(store.open(1).unwrap().record_count(), 5);
        assert_eq!(store.ids(), vec![1]);
    }

    #[test]
    fn cached_disk_store_serves_hits_and_invalidates_on_put() {
        use crate::page::{BlockCache, CacheConfig};
        let dir = std::env::temp_dir().join(format!("climber-dfs-cache-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        let store = DiskStore::new(&dir).unwrap();
        let cache = Arc::new(BlockCache::new(CacheConfig::default()));
        store.attach_cache(Arc::clone(&cache));
        store.put(3, encode_partition(7, 1, 4)).unwrap();
        assert_eq!(store.open(3).unwrap().record_count(), 4);
        assert_eq!(cache.stats().hits, 0, "first open misses");
        assert_eq!(store.open(3).unwrap().record_count(), 4);
        assert_eq!(cache.stats().hits, 1, "second open hits");
        // A rewrite invalidates: the next open sees the new bytes.
        store.put(3, encode_partition(7, 1, 9)).unwrap();
        assert_eq!(store.open(3).unwrap().record_count(), 9);
        // Both cached and uncached opens count identically.
        let before = store.stats().snapshot();
        store.open(3).unwrap();
        let diff = store.stats().snapshot().since(&before);
        assert_eq!(diff.partitions_opened, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compressed_puts_roundtrip_and_report_stored_bytes() {
        let dir = std::env::temp_dir().join(format!("climber-dfs-comp-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        let store = DiskStore::new(&dir).unwrap();
        store.set_compress_puts(true);
        let v1 = encode_partition(5, 2, 50);
        store.put(1, v1.clone()).unwrap();
        // On disk: compressed. Through open(): the exact v1 image.
        let stored = store.stored_bytes(1).unwrap();
        assert!(crate::page::is_compressed(&stored));
        let reader = store.open(1).unwrap();
        assert_eq!(reader.raw_bytes(), &v1[..]);
        // read_cluster goes through the same transparent decompression.
        let mut out = Vec::new();
        assert_eq!(store.read_cluster(1, 2, &mut out).unwrap(), 50);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stored_bytes_default_matches_open_image() {
        let store = MemStore::new();
        let v1 = encode_partition(1, 4, 3);
        store.put(0, v1.clone()).unwrap();
        assert_eq!(&store.stored_bytes(0).unwrap()[..], &v1[..]);
    }

    #[test]
    fn store_cluster_view_is_zero_copy_equivalent() {
        let store = MemStore::new();
        store.put(0, encode_partition(3, 11, 6)).unwrap();
        let view = store.cluster_view(0, 11).unwrap().unwrap();
        assert_eq!(view.len(), 6);
        let mut decoded = Vec::new();
        store.read_cluster(0, 11, &mut decoded).unwrap();
        let mut viewed = Vec::new();
        view.for_each(|id, vals| viewed.push((id, vals.to_vec())));
        assert_eq!(decoded, viewed);
        assert!(store.cluster_view(0, 999).unwrap().is_none());
    }

    #[test]
    fn cluster_read_counts_only_cluster_bytes() {
        let store = MemStore::new();
        let mut w = PartitionWriter::new(9, 2);
        let big: Vec<(u64, Vec<f32>)> = (0..100).map(|i| (i, vec![0.0, 0.0])).collect();
        let small: Vec<(u64, Vec<f32>)> = vec![(999, vec![1.0, 1.0])];
        w.push_cluster(1, big.iter().map(|(id, v)| (*id, v.as_slice())));
        w.push_cluster(2, small.iter().map(|(id, v)| (*id, v.as_slice())));
        store.put(0, w.finish()).unwrap();

        let before = store.stats().snapshot();
        let mut out = Vec::new();
        store.read_cluster(0, 2, &mut out).unwrap();
        let diff = store.stats().snapshot().since(&before);
        // One record of 16 bytes + header, far below the 100-record cluster.
        assert!(diff.bytes_read < 200, "read {} bytes", diff.bytes_read);
        assert_eq!(out.len(), 1);
    }
}
