//! Partition-level sampling (§V Step 1).
//!
//! "The sample is generated at the partition level, i.e., a subset of the
//! data partitions are randomly selected. This way full-scan over the data
//! is avoided." Raw input data is assumed to arrive already spread over
//! partitions without any special organisation, so whole-partition sampling
//! is representative.

use crate::store::{PartitionId, PartitionStore};
use climber_series::dataset::Dataset;
use climber_series::sampling::partition_level_sample;

/// Result of a partition-level sample: the series drawn plus the achieved
/// sampling fraction (which can differ slightly from the requested `alpha`
/// because whole partitions are taken).
#[derive(Debug, Clone)]
pub struct PartitionSample {
    /// The sampled series, as a dataset.
    pub data: Dataset,
    /// Ids of the partitions that were read.
    pub partitions: Vec<PartitionId>,
    /// Achieved sampling fraction = sampled records / total records.
    pub achieved_alpha: f64,
}

/// Draws an `alpha` partition-level sample from `store` (whole partitions,
/// chosen uniformly at random, deterministic in `seed`).
///
/// # Panics
/// If the store is empty or `alpha` is outside `(0, 1]`.
pub fn sample_partitions<S: PartitionStore>(
    store: &S,
    series_len: usize,
    alpha: f64,
    seed: u64,
) -> PartitionSample {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
    let ids = store.ids();
    assert!(!ids.is_empty(), "cannot sample an empty store");
    let take = ((ids.len() as f64 * alpha).ceil() as usize).clamp(1, ids.len());
    let picked_idx = partition_level_sample(ids.len(), take, seed);

    let mut data = Dataset::new(series_len);
    let mut partitions = Vec::with_capacity(take);
    let mut total_records = 0u64;
    // total records across all partitions, to compute the achieved fraction
    for (i, &pid) in ids.iter().enumerate() {
        let reader = store.open(pid).expect("partition listed but unreadable");
        let count = reader.record_count();
        total_records += count;
        if picked_idx.binary_search(&i).is_ok() {
            reader.for_each(|_, vals| {
                data.push(vals);
            });
            store.stats().on_read(
                reader
                    .cluster_ids()
                    .iter()
                    .filter_map(|&n| reader.cluster_bytes(n))
                    .sum::<usize>() as u64,
            );
            store.stats().on_records_read(count);
            partitions.push(pid);
        }
    }
    let achieved_alpha = if total_records == 0 {
        0.0
    } else {
        data.num_series() as f64 / total_records as f64
    };
    PartitionSample {
        data,
        partitions,
        achieved_alpha,
    }
}

/// Splits a raw dataset into `parts` roughly equal input partitions and
/// stores them (the "raw dataset" box of Figure 6 — the unorganised state
/// the data arrives in before indexing). Each record keeps its original
/// series id. Returns the partition ids written.
pub fn scatter_dataset<S: PartitionStore>(
    store: &S,
    ds: &Dataset,
    parts: usize,
) -> Vec<PartitionId> {
    use crate::format::PartitionWriter;
    assert!(parts > 0, "need at least one partition");
    let n = ds.num_series();
    let per = n.div_ceil(parts.min(n.max(1)));
    let mut ids = Vec::new();
    let mut next_pid: PartitionId = 0;
    let mut i = 0usize;
    while i < n {
        let end = (i + per).min(n);
        let mut w = PartitionWriter::new(u64::MAX, ds.series_len());
        // Raw input partitions have no trie structure: single cluster 0.
        w.push_cluster(0, (i..end).map(|r| (r as u64, ds.get(r as u64))));
        store.put(next_pid, w.finish()).expect("store write failed");
        ids.push(next_pid);
        next_pid += 1;
        i = end;
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use climber_series::gen::Domain;

    #[test]
    fn scatter_then_sample_roundtrip() {
        let ds = Domain::RandomWalk.generate(100, 1);
        let store = MemStore::new();
        let pids = scatter_dataset(&store, &ds, 10);
        assert_eq!(pids.len(), 10);

        let sample = sample_partitions(&store, ds.series_len(), 1.0, 7);
        assert_eq!(sample.data.num_series(), 100);
        assert!((sample.achieved_alpha - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_sample_has_expected_size() {
        let ds = Domain::Eeg.generate(100, 2);
        let store = MemStore::new();
        scatter_dataset(&store, &ds, 20); // 5 records per partition
        let sample = sample_partitions(&store, ds.series_len(), 0.3, 3);
        assert_eq!(sample.partitions.len(), 6);
        assert_eq!(sample.data.num_series(), 30);
        assert!((sample.achieved_alpha - 0.3).abs() < 1e-9);
    }

    #[test]
    fn sample_is_deterministic() {
        let ds = Domain::Dna.generate(50, 3);
        let store = MemStore::new();
        scatter_dataset(&store, &ds, 10);
        let a = sample_partitions(&store, ds.series_len(), 0.5, 11);
        let b = sample_partitions(&store, ds.series_len(), 0.5, 11);
        assert_eq!(a.data, b.data);
        assert_eq!(a.partitions, b.partitions);
    }

    #[test]
    fn scatter_handles_non_divisible_counts() {
        let ds = Domain::TexMex.generate(7, 4);
        let store = MemStore::new();
        let pids = scatter_dataset(&store, &ds, 3);
        assert_eq!(pids.len(), 3);
        let total: u64 = pids
            .iter()
            .map(|&p| store.open(p).unwrap().record_count())
            .sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn scatter_more_parts_than_records() {
        let ds = Domain::TexMex.generate(2, 4);
        let store = MemStore::new();
        let pids = scatter_dataset(&store, &ds, 10);
        assert_eq!(pids.len(), 2, "no empty partitions created");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_rejected() {
        let store = MemStore::new();
        sample_partitions(&store, 8, 0.0, 0);
    }

    #[test]
    fn sampled_series_preserve_original_ids_via_for_each() {
        // Ids inside partitions are the original dataset ids.
        let ds = Domain::RandomWalk.generate(10, 5);
        let store = MemStore::new();
        let pids = scatter_dataset(&store, &ds, 2);
        let mut seen = Vec::new();
        for pid in pids {
            store.open(pid).unwrap().for_each(|id, _| seen.push(id));
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10u64).collect::<Vec<_>>());
    }
}
