//! # climber-dfs
//!
//! The simulated distributed substrate CLIMBER runs on.
//!
//! The paper's prototype uses Apache Spark over HDFS; the experiments it
//! reports depend on that substrate only through a handful of observable
//! behaviours — *how many partitions a query touches*, *how many bytes are
//! read*, *how much data a build shuffles*, and the 64/128 MB partition
//! capacity. This crate supplies those behaviours in-process:
//!
//! * [`stats`] — atomic I/O accounting (partitions opened, bytes read and
//!   written, records shuffled) that every experiment reads;
//! * [`format`](mod@format) — the on-disk partition format: records
//!   clustered by trie
//!   node with a header directory of offsets, exactly the layout §VI
//!   describes for localized record-level access;
//! * [`store`] — in-memory and on-disk partition stores behind one trait;
//! * [`manifest`] — the versioned on-disk index manifest: checksummed
//!   byte ranges for every partition, atomic-rename commit protocol, and
//!   the typed [`OpenError`] cold-start validation
//!   reports;
//! * [`fsio`] — the pluggable filesystem under every durable path: a
//!   [`ClimberFs`] trait with the production [`StdFs`] passthrough and a
//!   deterministic fault-injecting [`FaultFs`] for crash-consistency
//!   torture tests;
//! * [`cluster`] — a deterministic worker pool with the Spark-ish verbs the
//!   index build pipeline needs (parallel map, shuffle-by-key, broadcast);
//! * [`sample`] — partition-level sampling (§V Step 1 reads a random subset
//!   of partitions rather than scanning the dataset);
//! * [`page`] — the paged storage engine: a sharded byte-budgeted LRU
//!   [`BlockCache`] over whole partition images, zero-copy
//!   [`ClusterView`]s, the compressed CLBP v2 partition encoding, and the
//!   [`CacheLedger`] unifying block and quantized byte budgets.

pub mod cluster;
pub mod format;
pub mod fsio;
pub mod manifest;
pub mod page;
pub mod quant;
pub mod sample;
pub mod segment;
pub mod stats;
pub mod store;

pub use cluster::{Broadcast, Cluster};
pub use format::{ByteReader, Decode, Encode, PartitionReader, PartitionWriter, TrieNodeId};
pub use fsio::{ClimberFs, FaultAction, FaultFs, FaultTrigger, FsOp, FsRef, StdFs};
pub use manifest::{Manifest, OpenError, FORMAT_VERSION, MANIFEST_FILE};
pub use page::{BlockCache, BlockCacheStats, CacheConfig, CacheLedger, ClusterView, PAGE_SIZE};
pub use quant::{QuantCache, QuantizedCluster};
pub use segment::{DeltaSegment, TombstoneSet, JOURNAL_FILE};
pub use stats::IoStats;
pub use store::{DiskStore, MemStore, PartitionId, PartitionStore};
