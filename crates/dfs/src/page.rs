//! Paged storage: fixed-size pages, a sharded byte-budgeted LRU block
//! cache, zero-copy cluster views, and the compressed partition format.
//!
//! The uncached read path re-decodes whole partitions from disk into a
//! throwaway buffer on every batch; at scale, data-series search is
//! dominated by that storage I/O and decode, not by distance math. This
//! module restructures `climber-dfs` around three cooperating pieces:
//!
//! * **[`BlockCache`]** — a sharded, byte-budgeted LRU over whole
//!   partition images, accounted in fixed-size [`PAGE_SIZE`] pages and
//!   shared across queries, batches, and shards through one `Arc`. A hit
//!   serves the partition's bytes without touching the filesystem; the
//!   refcounted [`Bytes`] image means every reader opened over it is
//!   zero-copy.
//! * **[`ClusterView`]** — an *owned* zero-copy view of one trie-node
//!   cluster: a refcounted slice of the cached partition image that can
//!   outlive the [`PartitionReader`] it came from, so scan loops borrow
//!   cached pages instead of memcpy-ing records into a `ClusterBuf`.
//! * **Compressed partitions (CLBP v2)** — an optional on-disk encoding
//!   applied on seal: per-cluster delta+varint ids and XOR-varint values,
//!   bitwise-lossless, decompressed once on first touch and pinned in the
//!   cache thereafter. [`decompress_partition`] reproduces the exact v1
//!   byte image, so every reader behaves identically on either format.
//!
//! Byte budgeting is unified with the quantized record cache through a
//! shared [`CacheLedger`]: quantized codes and cached blocks draw from the
//! same budget, so enabling one never double-accounts the other and
//! releasing either (maintenance, `set_quant_enabled(false)`) frees real
//! headroom.

use crate::format::{PartitionReader, PartitionWriter};
use crate::store::PartitionId;
use bytes::Bytes;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Size of one cache page (64 KiB). Cached partition images are charged
/// in whole pages — `ceil(len / PAGE_SIZE)` pages each — so the budget
/// accounting mirrors a page-granular buffer pool even though an image is
/// stored contiguously for zero-copy reads.
pub const PAGE_SIZE: usize = 64 * 1024;

/// Number of independently locked cache shards. Eight is plenty: the
/// map operations under each lock are O(1) hash probes, and partition
/// opens are orders of magnitude rarer than record scans.
const CACHE_SHARDS: usize = 8;

/// Default cache budget: 256 MiB, matching the quantized cache's default.
pub const DEFAULT_CACHE_BYTES: usize = 256 << 20;

/// Pages needed to hold `len` bytes (at least one).
pub fn pages_of(len: usize) -> usize {
    len.div_ceil(PAGE_SIZE).max(1)
}

/// The byte charge of caching a `len`-byte image: whole pages.
pub fn charge_of(len: usize) -> usize {
    pages_of(len) * PAGE_SIZE
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Configuration of the paged storage engine, passed to
/// `Climber::open_with_cache` / `ShardedClimber::open_with_cache`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Byte budget shared by cached blocks *and* quantized codes (whole
    /// [`PAGE_SIZE`] pages per cached image).
    pub capacity_bytes: usize,
    /// Write partitions in the compressed CLBP v2 format on seal and on
    /// maintenance rewrites. Reading auto-detects per file, so mixed
    /// directories are always valid.
    pub compress: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: DEFAULT_CACHE_BYTES,
            compress: false,
        }
    }
}

impl CacheConfig {
    /// Sets the shared byte budget.
    #[must_use]
    pub fn with_capacity_bytes(mut self, capacity_bytes: usize) -> Self {
        self.capacity_bytes = capacity_bytes;
        self
    }

    /// Enables compressed (CLBP v2) partition writes on seal.
    #[must_use]
    pub fn with_compression(mut self) -> Self {
        self.compress = true;
        self
    }
}

// ---------------------------------------------------------------------------
// Shared byte-budget ledger
// ---------------------------------------------------------------------------

/// The unified byte-budget ledger: one `used` counter charged by every
/// cache drawing from the budget (the block cache's resident pages and
/// the quantized cache's code tables), so the two never double-account
/// the same budget and releasing either frees real headroom.
#[derive(Debug)]
pub struct CacheLedger {
    used: AtomicUsize,
    capacity: usize,
}

impl CacheLedger {
    /// A ledger with the given byte capacity.
    pub fn new(capacity: usize) -> Self {
        Self {
            used: AtomicUsize::new(0),
            capacity,
        }
    }

    /// Bytes currently charged.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// The budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when `cost` more bytes fit without exceeding the budget.
    pub fn would_fit(&self, cost: usize) -> bool {
        self.used().saturating_add(cost) <= self.capacity
    }

    /// Charges `n` bytes.
    pub fn charge(&self, n: usize) {
        self.used.fetch_add(n, Ordering::Relaxed);
    }

    /// Releases `n` bytes (saturating — a release can never underflow).
    pub fn release(&self, n: usize) {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Block cache
// ---------------------------------------------------------------------------

/// Key of a cached block: the owning store's token (so one shared cache
/// serves many stores/shards without id collisions) and the partition id.
type BlockKey = (u64, PartitionId);

#[derive(Debug)]
struct CacheEntry {
    /// The decompressed (v1) partition image; refcounted, so readers and
    /// views opened over it are zero-copy.
    bytes: Bytes,
    /// On-disk length (compressed length for v2 files, `bytes.len()`
    /// otherwise) — the numerator of the compressed ratio.
    stored_len: usize,
    /// Page-rounded byte charge against the ledger.
    charge: usize,
    /// LRU clock value of the last touch.
    last_used: u64,
}

/// Point-in-time counters of a [`BlockCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockCacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that had to read the filesystem.
    pub misses: u64,
    /// Blocks evicted to stay inside the budget.
    pub evictions: u64,
    /// Bytes warmed from cold-open validation reads.
    pub warmed_bytes: u64,
    /// Page-rounded bytes of resident blocks (what the ledger is charged).
    pub resident_bytes: u64,
    /// Uncompressed (decoded image) bytes of resident blocks.
    pub raw_bytes: u64,
    /// On-disk bytes of resident blocks (equals `raw_bytes` when nothing
    /// is compressed).
    pub stored_bytes: u64,
}

impl BlockCacheStats {
    /// On-disk ÷ in-memory size of resident blocks: 1.0 when nothing is
    /// compressed, below 1.0 when compression is saving disk bytes.
    pub fn compressed_ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            1.0
        } else {
            self.stored_bytes as f64 / self.raw_bytes as f64
        }
    }
}

/// Allocates a store token: the namespace half of a [`BlockCache`] key.
/// Monotone and process-global, so two stores can never collide even when
/// they share one cache.
pub fn next_store_token() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// A sharded, byte-budgeted LRU cache of whole partition images, shared
/// across queries, batches, and shards through one `Arc`.
///
/// * **Hit path**: a refcounted [`Bytes`] clone — no filesystem touch, no
///   copy; `PartitionReader::open` over it re-validates the header and
///   borrows the cached pages.
/// * **Budget**: whole [`PAGE_SIZE`] pages per image, charged against a
///   [`CacheLedger`] that the quantized cache shares, evicting the least
///   recently used blocks (never quantized codes) once the combined
///   usage exceeds the budget.
/// * **Coherence**: stores invalidate a partition's entry on every
///   rewrite, quarantine, and re-admission; staged (`.new`) and
///   quarantined partitions bypass the cache entirely.
#[derive(Debug)]
pub struct BlockCache {
    shards: Vec<Mutex<HashMap<BlockKey, CacheEntry>>>,
    ledger: Arc<CacheLedger>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    warmed_bytes: AtomicU64,
    resident_bytes: AtomicUsize,
    raw_bytes: AtomicUsize,
    stored_bytes: AtomicUsize,
}

impl BlockCache {
    /// A cache with `config`'s byte budget (compression flags are read by
    /// the index layer, not the cache).
    pub fn new(config: CacheConfig) -> Self {
        Self {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            ledger: Arc::new(CacheLedger::new(config.capacity_bytes)),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            warmed_bytes: AtomicU64::new(0),
            resident_bytes: AtomicUsize::new(0),
            raw_bytes: AtomicUsize::new(0),
            stored_bytes: AtomicUsize::new(0),
        }
    }

    /// The shared byte-budget ledger (attach it to a `QuantCache` so both
    /// caches draw from one budget).
    pub fn ledger(&self) -> Arc<CacheLedger> {
        Arc::clone(&self.ledger)
    }

    /// The byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.ledger.capacity()
    }

    fn shard_of(&self, key: &BlockKey) -> &Mutex<HashMap<BlockKey, CacheEntry>> {
        // Partition ids are small and sequential; mix the token in so two
        // stores' partitions spread across different shards.
        let h = key
            .0
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(key.1))
            .rotate_left(17);
        &self.shards[(h as usize) % CACHE_SHARDS]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up the cached image of `(token, pid)`, refreshing its LRU
    /// position. Counts a hit or a miss.
    pub fn get(&self, token: u64, pid: PartitionId) -> Option<Bytes> {
        let key = (token, pid);
        let mut map = self
            .shard_of(&key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.next_tick();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.bytes.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn account_insert(&self, entry: &CacheEntry) {
        self.ledger.charge(entry.charge);
        self.resident_bytes
            .fetch_add(entry.charge, Ordering::Relaxed);
        self.raw_bytes
            .fetch_add(entry.bytes.len(), Ordering::Relaxed);
        self.stored_bytes
            .fetch_add(entry.stored_len, Ordering::Relaxed);
    }

    fn account_remove(&self, entry: &CacheEntry) {
        self.ledger.release(entry.charge);
        self.resident_bytes
            .fetch_sub(entry.charge, Ordering::Relaxed);
        self.raw_bytes
            .fetch_sub(entry.bytes.len(), Ordering::Relaxed);
        self.stored_bytes
            .fetch_sub(entry.stored_len, Ordering::Relaxed);
    }

    /// Inserts (or replaces) the image of `(token, pid)`, then evicts
    /// least-recently-used blocks until the shared ledger fits the budget
    /// again. Returns the number of evictions this insert triggered.
    /// Images larger than the whole budget are not cached.
    pub fn insert(&self, token: u64, pid: PartitionId, bytes: Bytes, stored_len: usize) -> u64 {
        let charge = charge_of(bytes.len());
        if charge > self.ledger.capacity() {
            return 0;
        }
        let key = (token, pid);
        let entry = CacheEntry {
            bytes,
            stored_len,
            charge,
            last_used: self.next_tick(),
        };
        {
            let mut map = self
                .shard_of(&key)
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(old) = map.insert(key, entry) {
                self.account_remove(&old);
            }
        }
        self.account_insert_by_key(&key);
        self.evict_to_fit()
    }

    fn account_insert_by_key(&self, key: &BlockKey) {
        let map = self
            .shard_of(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(entry) = map.get(key) {
            self.account_insert(entry);
        }
    }

    /// Inserts only when the image fits the budget *without* evicting
    /// anything — the cold-open warming path, which must never churn a
    /// cache another index is already using. Returns whether the bytes
    /// were cached; on success they count toward `warmed_bytes`.
    pub fn try_warm(&self, token: u64, pid: PartitionId, bytes: Bytes, stored_len: usize) -> bool {
        let charge = charge_of(bytes.len());
        if !self.ledger.would_fit(charge) {
            return false;
        }
        let key = (token, pid);
        let raw_len = bytes.len();
        let entry = CacheEntry {
            bytes,
            stored_len,
            charge,
            last_used: self.next_tick(),
        };
        let mut map = self
            .shard_of(&key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(old) = map.insert(key, entry) {
            self.account_remove(&old);
        }
        drop(map);
        self.account_insert_by_key(&key);
        self.warmed_bytes
            .fetch_add(raw_len as u64, Ordering::Relaxed);
        true
    }

    /// Evicts globally-least-recently-used blocks until the shared ledger
    /// is within budget (quantized bytes count against it too, but only
    /// blocks are evictable here). Returns how many blocks were evicted.
    fn evict_to_fit(&self) -> u64 {
        let mut evicted = 0u64;
        while self.ledger.used() > self.ledger.capacity() {
            // Find the global LRU victim with one pass over the shards.
            let mut victim: Option<(BlockKey, u64)> = None;
            for shard in &self.shards {
                let map = shard.lock().unwrap_or_else(PoisonError::into_inner);
                for (key, entry) in map.iter() {
                    if victim.map_or(true, |(_, t)| entry.last_used < t) {
                        victim = Some((*key, entry.last_used));
                    }
                }
            }
            let Some((key, _)) = victim else {
                // Nothing evictable (the overage is quantized bytes).
                break;
            };
            let mut map = self
                .shard_of(&key)
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(old) = map.remove(&key) {
                self.account_remove(&old);
                evicted += 1;
            }
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// Drops the cached image of `(token, pid)`, if resident — called by
    /// stores on rewrite, quarantine, and re-admission.
    pub fn invalidate(&self, token: u64, pid: PartitionId) {
        let key = (token, pid);
        let mut map = self
            .shard_of(&key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(old) = map.remove(&key) {
            self.account_remove(&old);
        }
    }

    /// Drops every cached block of store `token`.
    pub fn invalidate_store(&self, token: u64) {
        for shard in &self.shards {
            let mut map = shard.lock().unwrap_or_else(PoisonError::into_inner);
            map.retain(|key, entry| {
                if key.0 == token {
                    self.account_remove(entry);
                    false
                } else {
                    true
                }
            });
        }
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// True when no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A near-consistent snapshot of the cache's counters and gauges.
    pub fn stats(&self) -> BlockCacheStats {
        BlockCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            warmed_bytes: self.warmed_bytes.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed) as u64,
            raw_bytes: self.raw_bytes.load(Ordering::Relaxed) as u64,
            stored_bytes: self.stored_bytes.load(Ordering::Relaxed) as u64,
        }
    }
}

// ---------------------------------------------------------------------------
// Zero-copy cluster views
// ---------------------------------------------------------------------------

/// An **owned** zero-copy view over one trie-node cluster's encoded
/// records: a refcounted slice of the (possibly cached) partition image.
///
/// Unlike `ClusterRecords<'_>`, which borrows its `PartitionReader`, a
/// `ClusterView` can outlive the reader — scan loops hold the view (and
/// thereby pin the cached pages) without copying a byte of record data.
#[derive(Debug, Clone)]
pub struct ClusterView {
    bytes: Bytes,
    series_len: usize,
    count: usize,
}

impl ClusterView {
    pub(crate) fn new(bytes: Bytes, series_len: usize, count: usize) -> Self {
        debug_assert_eq!(bytes.len(), count * (8 + series_len * 4));
        Self {
            bytes,
            series_len,
            count,
        }
    }

    /// Number of records in the cluster.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the cluster holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Length of every stored series.
    #[inline]
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Series id of record `i` — an 8-byte read, no value decoding.
    ///
    /// # Panics
    /// If `i >= len()`.
    #[inline]
    pub fn id(&self, i: usize) -> u64 {
        let off = i * (8 + self.series_len * 4);
        u64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }

    /// Decodes the values of record `i` into `out` (cleared first).
    ///
    /// # Panics
    /// If `i >= len()`.
    pub fn values_into(&self, i: usize, out: &mut Vec<f32>) {
        let record_size = 8 + self.series_len * 4;
        let off = i * record_size;
        out.clear();
        out.extend(
            self.bytes[off + 8..off + record_size]
                .chunks_exact(4)
                .map(|chunk| f32::from_le_bytes(chunk.try_into().unwrap())),
        );
    }

    /// Visits every record with a reusable decode buffer, in storage
    /// order. Returns the number of records visited.
    pub fn for_each<F>(&self, mut f: F) -> u64
    where
        F: FnMut(u64, &[f32]),
    {
        let record_size = 8 + self.series_len * 4;
        let mut buf = vec![0.0f32; self.series_len];
        for r in 0..self.count {
            let off = r * record_size;
            let id = u64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap());
            for (i, chunk) in self.bytes[off + 8..off + record_size]
                .chunks_exact(4)
                .enumerate()
            {
                buf[i] = f32::from_le_bytes(chunk.try_into().unwrap());
            }
            f(id, &buf);
        }
        self.count as u64
    }
}

impl PartitionReader {
    /// An owned zero-copy view of cluster `node_id`, or `None` when the
    /// node is absent. The view shares the reader's refcounted image —
    /// when that image came from a [`BlockCache`] hit, the view borrows
    /// cached pages directly.
    pub fn cluster_view(&self, node_id: crate::format::TrieNodeId) -> Option<ClusterView> {
        let (bytes, count) = self.cluster_bytes_owned(node_id)?;
        Some(ClusterView::new(bytes, self.series_len(), count as usize))
    }
}

// ---------------------------------------------------------------------------
// Compressed partitions (CLBP v2)
// ---------------------------------------------------------------------------
//
// Layout (all integers little-endian; varints are LEB128):
//
//   magic "CLBP" | version u32 = 2 | group_id u64 | series_len u32
//   n_clusters u32
//   directory: n_clusters × (node u64, start u64, count u32)   — as in v1
//   per cluster, in directory order:
//     ids_tag u8 | ids_len u32 | ids block
//     vals_tag u8 | vals_len u32 | vals block
//
// ids block:  tag 0 = raw u64 LE × count;
//             tag 1 = varint(first id), then zigzag-varint deltas.
// vals block: tag 0 = raw f32 LE × (count × series_len), record-major;
//             tag 1 = per f32 word, varint(bits XOR same-position word of
//                     the previous record) — the first record XORs zero.
//
// The encoder picks the smaller block per cluster, so v2 never expands a
// cluster by more than the 10 bytes of tags and lengths. Decompression
// rebuilds the exact canonical v1 image (open-validated v1 images are
// always canonical: the directory's start offsets are running totals).

const MAGIC: [u8; 4] = *b"CLBP";
const V2: u32 = 2;
const V2_HEADER: usize = 4 + 4 + 8 + 4 + 4;
const DIR_ENTRY: usize = 8 + 8 + 4;

const BLOCK_RAW: u8 = 0;
const BLOCK_PACKED: u8 = 1;

/// True when `bytes` look like a compressed (CLBP v2) partition.
pub fn is_compressed(bytes: &[u8]) -> bool {
    bytes.len() >= 8
        && bytes[0..4] == MAGIC
        && u32::from_le_bytes(bytes[4..8].try_into().unwrap()) == V2
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos).ok_or("varint truncated")?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err("varint overflows u64".into());
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn encode_ids(ids: &[u64]) -> (u8, Vec<u8>) {
    let mut packed = Vec::with_capacity(ids.len() * 2);
    if let Some(&first) = ids.first() {
        put_varint(&mut packed, first);
        let mut prev = first;
        for &id in &ids[1..] {
            put_varint(&mut packed, zigzag(id.wrapping_sub(prev) as i64));
            prev = id;
        }
    }
    if packed.len() < ids.len() * 8 {
        (BLOCK_PACKED, packed)
    } else {
        let mut raw = Vec::with_capacity(ids.len() * 8);
        for &id in ids {
            raw.extend_from_slice(&id.to_le_bytes());
        }
        (BLOCK_RAW, raw)
    }
}

fn encode_vals(vals: &[u32], series_len: usize) -> (u8, Vec<u8>) {
    let mut packed = Vec::with_capacity(vals.len() * 2);
    for (i, &word) in vals.iter().enumerate() {
        let prev = if i >= series_len {
            vals[i - series_len]
        } else {
            0
        };
        put_varint(&mut packed, u64::from(word ^ prev));
    }
    if packed.len() < vals.len() * 4 {
        (BLOCK_PACKED, packed)
    } else {
        let mut raw = Vec::with_capacity(vals.len() * 4);
        for &word in vals {
            raw.extend_from_slice(&word.to_le_bytes());
        }
        (BLOCK_RAW, raw)
    }
}

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Compresses an open-validated v1 partition image into CLBP v2.
/// Lossless: [`decompress_partition`] of the result is bit-identical to
/// `v1`.
pub fn compress_partition(v1: &Bytes) -> io::Result<Bytes> {
    let reader = PartitionReader::open(v1.clone()).map_err(corrupt)?;
    let nodes = reader.cluster_ids();
    let series_len = reader.series_len();
    let mut out = Vec::with_capacity(v1.len() / 2 + V2_HEADER);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&V2.to_le_bytes());
    out.extend_from_slice(&reader.group_id().to_le_bytes());
    out.extend_from_slice(&(series_len as u32).to_le_bytes());
    out.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
    let mut start = 0u64;
    for &node in &nodes {
        let count = reader.cluster_len(node).expect("listed cluster");
        out.extend_from_slice(&node.to_le_bytes());
        out.extend_from_slice(&start.to_le_bytes());
        out.extend_from_slice(&count.to_le_bytes());
        start += u64::from(count);
    }
    let mut ids: Vec<u64> = Vec::new();
    let mut vals: Vec<u32> = Vec::new();
    for &node in &nodes {
        ids.clear();
        vals.clear();
        reader.for_each_in_cluster(node, |id, values| {
            ids.push(id);
            vals.extend(values.iter().map(|v| v.to_bits()));
        });
        let (ids_tag, ids_block) = encode_ids(&ids);
        let (vals_tag, vals_block) = encode_vals(&vals, series_len);
        out.push(ids_tag);
        out.extend_from_slice(&(ids_block.len() as u32).to_le_bytes());
        out.extend_from_slice(&ids_block);
        out.push(vals_tag);
        out.extend_from_slice(&(vals_block.len() as u32).to_le_bytes());
        out.extend_from_slice(&vals_block);
    }
    Ok(Bytes::from(out))
}

/// Decompresses a CLBP v2 partition back into the exact v1 byte image it
/// was compressed from. Every structural violation is an
/// `InvalidData` error — torn or corrupt compressed files fail loudly,
/// never decode to wrong records.
pub fn decompress_partition(bytes: &[u8]) -> io::Result<Bytes> {
    if !is_compressed(bytes) {
        return Err(corrupt("not a CLBP v2 partition"));
    }
    if bytes.len() < V2_HEADER {
        return Err(corrupt("compressed partition shorter than header"));
    }
    let group_id = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let series_len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    let n_clusters = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as usize;
    if series_len == 0 {
        return Err(corrupt("compressed partition with zero series length"));
    }
    let dir_end = V2_HEADER + n_clusters * DIR_ENTRY;
    if bytes.len() < dir_end {
        return Err(corrupt("compressed partition truncated inside directory"));
    }
    let mut directory = Vec::with_capacity(n_clusters);
    let mut total = 0u64;
    for i in 0..n_clusters {
        let off = V2_HEADER + i * DIR_ENTRY;
        let node = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        let start = u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap());
        let count = u32::from_le_bytes(bytes[off + 16..off + 20].try_into().unwrap());
        if start != total {
            return Err(corrupt(format!(
                "compressed directory entry {i}: start {start} != running total {total}"
            )));
        }
        total += u64::from(count);
        directory.push((node, count));
    }
    let mut writer = PartitionWriter::new(group_id, series_len);
    let mut pos = dir_end;
    let take_block = |pos: &mut usize| -> io::Result<(u8, &[u8])> {
        if bytes.len() < *pos + 5 {
            return Err(corrupt("compressed block header truncated"));
        }
        let tag = bytes[*pos];
        let len = u32::from_le_bytes(bytes[*pos + 1..*pos + 5].try_into().unwrap()) as usize;
        *pos += 5;
        let block = bytes
            .get(*pos..*pos + len)
            .ok_or_else(|| corrupt("compressed block truncated"))?;
        *pos += len;
        Ok((tag, block))
    };
    let mut ids: Vec<u64> = Vec::new();
    let mut vals: Vec<f32> = Vec::new();
    for &(node, count) in &directory {
        let count = count as usize;
        let (ids_tag, ids_block) = take_block(&mut pos)?;
        ids.clear();
        match ids_tag {
            BLOCK_RAW => {
                if ids_block.len() != count * 8 {
                    return Err(corrupt("raw id block has the wrong length"));
                }
                ids.extend(
                    ids_block
                        .chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().unwrap())),
                );
            }
            BLOCK_PACKED => {
                let mut p = 0usize;
                if count > 0 {
                    let first = get_varint(ids_block, &mut p).map_err(corrupt)?;
                    ids.push(first);
                    let mut prev = first;
                    for _ in 1..count {
                        let d = get_varint(ids_block, &mut p).map_err(corrupt)?;
                        prev = prev.wrapping_add(unzigzag(d) as u64);
                        ids.push(prev);
                    }
                }
                if p != ids_block.len() {
                    return Err(corrupt("trailing bytes in packed id block"));
                }
            }
            other => return Err(corrupt(format!("unknown id block tag {other}"))),
        }
        let (vals_tag, vals_block) = take_block(&mut pos)?;
        let n_words = count * series_len;
        vals.clear();
        match vals_tag {
            BLOCK_RAW => {
                if vals_block.len() != n_words * 4 {
                    return Err(corrupt("raw value block has the wrong length"));
                }
                vals.extend(
                    vals_block
                        .chunks_exact(4)
                        .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap()))),
                );
            }
            BLOCK_PACKED => {
                let mut p = 0usize;
                let mut words: Vec<u32> = Vec::with_capacity(n_words);
                for i in 0..n_words {
                    let x = get_varint(vals_block, &mut p).map_err(corrupt)?;
                    let x = u32::try_from(x).map_err(|_| corrupt("value varint overflows u32"))?;
                    let prev = if i >= series_len {
                        words[i - series_len]
                    } else {
                        0
                    };
                    words.push(x ^ prev);
                }
                if p != vals_block.len() {
                    return Err(corrupt("trailing bytes in packed value block"));
                }
                vals.extend(words.into_iter().map(f32::from_bits));
            }
            other => return Err(corrupt(format!("unknown value block tag {other}"))),
        }
        writer.push_cluster(
            node,
            ids.iter()
                .enumerate()
                .map(|(i, &id)| (id, &vals[i * series_len..(i + 1) * series_len])),
        );
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes after compressed clusters"));
    }
    Ok(writer.finish())
}

/// Normalises stored partition bytes to the v1 image every reader
/// expects: v2 files are decompressed, v1 files pass through. Returns the
/// image and the stored (on-disk) length.
pub fn maybe_decompress(bytes: Bytes) -> io::Result<(Bytes, usize)> {
    let stored_len = bytes.len();
    if is_compressed(&bytes) {
        Ok((decompress_partition(&bytes)?, stored_len))
    } else {
        Ok((bytes, stored_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_partition(seed: u64, clusters: usize, per_cluster: usize, len: usize) -> Bytes {
        let mut w = PartitionWriter::new(seed, len);
        let mut id = seed * 1000;
        let mut x = seed.wrapping_mul(0x9E37_79B9).wrapping_add(1);
        for c in 0..clusters {
            let mut recs: Vec<(u64, Vec<f32>)> = Vec::new();
            for _ in 0..per_cluster {
                let mut vals = Vec::with_capacity(len);
                let mut v = 0.0f32;
                for _ in 0..len {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    v += ((x >> 33) as f32 / (1u64 << 31) as f32) - 0.5;
                    vals.push(v);
                }
                recs.push((id, vals));
                id += 1 + (x % 3);
            }
            w.push_cluster(100 + c as u64, recs.iter().map(|(i, v)| (*i, v.as_slice())));
        }
        w.finish()
    }

    #[test]
    fn compression_roundtrips_bit_identically() {
        for (clusters, per, len) in [(1, 1, 1), (3, 5, 16), (4, 0, 8), (2, 9, 33)] {
            let v1 = sample_partition(7, clusters, per, len);
            let v2 = compress_partition(&v1).unwrap();
            assert!(is_compressed(&v2));
            assert!(!is_compressed(&v1));
            let back = decompress_partition(&v2).unwrap();
            assert_eq!(
                &back[..],
                &v1[..],
                "clusters={clusters} per={per} len={len}"
            );
            // maybe_decompress normalises both formats
            let (img, stored) = maybe_decompress(v2.clone()).unwrap();
            assert_eq!(&img[..], &v1[..]);
            assert_eq!(stored, v2.len());
            let (img, stored) = maybe_decompress(v1.clone()).unwrap();
            assert_eq!(&img[..], &v1[..]);
            assert_eq!(stored, v1.len());
        }
    }

    #[test]
    fn compression_shrinks_sequential_ids() {
        // Random-walk values with near-sequential ids: the id blocks pack
        // to ~2 bytes per record instead of 8.
        let v1 = sample_partition(3, 4, 50, 32);
        let v2 = compress_partition(&v1).unwrap();
        assert!(
            v2.len() < v1.len(),
            "compressed {} >= raw {}",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn torn_compressed_bytes_fail_loudly() {
        let v1 = sample_partition(11, 2, 6, 12);
        let v2 = compress_partition(&v1).unwrap();
        for cut in [5usize, 12, 30, v2.len() - 1] {
            assert!(
                decompress_partition(&v2[..cut.min(v2.len())]).is_err(),
                "cut at {cut}"
            );
        }
        let mut trailing = v2.to_vec();
        trailing.push(0);
        assert!(decompress_partition(&trailing).is_err());
        // flipped tag byte
        let mut bad = v2.to_vec();
        let tag_at = V2_HEADER + 2 * DIR_ENTRY;
        bad[tag_at] = 9;
        assert!(decompress_partition(&bad).is_err());
    }

    #[test]
    fn varints_roundtrip() {
        let mut out = Vec::new();
        let samples = [0u64, 1, 127, 128, 300, u64::MAX, u64::MAX - 1, 1 << 62];
        for &v in &samples {
            out.clear();
            put_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_varint(&out, &mut pos).unwrap(), v);
            assert_eq!(pos, out.len());
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn cache_hits_misses_and_lru_eviction() {
        // Budget of 3 pages: each tiny image charges one page.
        let cache = BlockCache::new(CacheConfig::default().with_capacity_bytes(3 * PAGE_SIZE));
        let token = next_store_token();
        let img = |seed| sample_partition(seed, 1, 2, 4);
        assert!(cache.get(token, 1).is_none());
        cache.insert(token, 1, img(1), img(1).len());
        cache.insert(token, 2, img(2), img(2).len());
        cache.insert(token, 3, img(3), img(3).len());
        assert_eq!(cache.len(), 3);
        // Touch 1 and 2 so 3 is the LRU victim.
        assert!(cache.get(token, 1).is_some());
        assert!(cache.get(token, 2).is_some());
        let evicted = cache.insert(token, 4, img(4), img(4).len());
        assert_eq!(evicted, 1);
        assert!(cache.get(token, 3).is_none(), "LRU entry evicted");
        assert!(cache.get(token, 1).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.hits >= 3);
        assert!(stats.misses >= 2);
        assert_eq!(stats.resident_bytes, 3 * PAGE_SIZE as u64);
        assert!((stats.compressed_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cache_tokens_namespace_partition_ids() {
        let cache = BlockCache::new(CacheConfig::default());
        let (a, b) = (next_store_token(), next_store_token());
        let img = sample_partition(5, 1, 1, 2);
        cache.insert(a, 7, img.clone(), img.len());
        assert!(cache.get(a, 7).is_some());
        assert!(cache.get(b, 7).is_none());
        cache.invalidate(a, 7);
        assert!(cache.get(a, 7).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn warming_never_evicts() {
        let cache = BlockCache::new(CacheConfig::default().with_capacity_bytes(2 * PAGE_SIZE));
        let token = next_store_token();
        let img = |seed| sample_partition(seed, 1, 2, 4);
        assert!(cache.try_warm(token, 1, img(1), img(1).len()));
        assert!(cache.try_warm(token, 2, img(2), img(2).len()));
        // Budget full: warming refuses instead of evicting.
        assert!(!cache.try_warm(token, 3, img(3), img(3).len()));
        assert_eq!(cache.len(), 2);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.warmed_bytes, (img(1).len() + img(2).len()) as u64);
    }

    #[test]
    fn ledger_is_shared_and_saturating() {
        let cache = BlockCache::new(CacheConfig::default().with_capacity_bytes(4 * PAGE_SIZE));
        let ledger = cache.ledger();
        assert_eq!(ledger.used(), 0);
        // A foreign charge (e.g. the quantized cache) counts against the
        // same budget and can be evicted around.
        ledger.charge(3 * PAGE_SIZE);
        let token = next_store_token();
        let img = |seed| sample_partition(seed, 1, 2, 4);
        cache.insert(token, 1, img(1), img(1).len());
        cache.insert(token, 2, img(2), img(2).len());
        // 3 foreign pages + 2 block pages > 4: blocks evict down to 1.
        assert_eq!(cache.len(), 1);
        ledger.release(10 * PAGE_SIZE);
        assert_eq!(ledger.used(), 0, "release saturates at zero");
        assert!(!ledger.would_fit(usize::MAX));
    }

    #[test]
    fn oversized_images_bypass_the_cache() {
        let cache = BlockCache::new(CacheConfig::default().with_capacity_bytes(PAGE_SIZE));
        let token = next_store_token();
        let big = sample_partition(9, 8, 200, 16);
        assert!(big.len() > PAGE_SIZE);
        assert_eq!(cache.insert(token, 1, big.clone(), big.len()), 0);
        assert!(cache.is_empty());
        assert!(!cache.try_warm(token, 1, big.clone(), big.len()));
    }

    #[test]
    fn cluster_view_matches_reader_decode() {
        let v1 = sample_partition(21, 3, 7, 9);
        let reader = PartitionReader::open(v1).unwrap();
        for node in reader.cluster_ids() {
            let view = reader.cluster_view(node).unwrap();
            assert_eq!(view.len() as u32, reader.cluster_len(node).unwrap());
            assert_eq!(view.series_len(), reader.series_len());
            let mut via_reader = Vec::new();
            reader.for_each_in_cluster(node, |id, vals| via_reader.push((id, vals.to_vec())));
            let mut via_view = Vec::new();
            view.for_each(|id, vals| via_view.push((id, vals.to_vec())));
            assert_eq!(via_reader, via_view);
            let mut scratch = Vec::new();
            for (i, (id, vals)) in via_reader.iter().enumerate() {
                assert_eq!(view.id(i), *id);
                view.values_into(i, &mut scratch);
                assert_eq!(&scratch, vals);
            }
        }
        assert!(reader.cluster_view(999_999).is_none());
    }

    #[test]
    fn page_accounting_rounds_up() {
        assert_eq!(pages_of(0), 1);
        assert_eq!(pages_of(1), 1);
        assert_eq!(pages_of(PAGE_SIZE), 1);
        assert_eq!(pages_of(PAGE_SIZE + 1), 2);
        assert_eq!(charge_of(PAGE_SIZE + 1), 2 * PAGE_SIZE);
    }
}
