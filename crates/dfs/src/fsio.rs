//! Pluggable filesystem: the injectable I/O layer under every durable
//! path.
//!
//! Everything the persistence layer does to a directory — partition
//! writes, manifest commits, journal staging, fsyncs, renames — goes
//! through the [`ClimberFs`] trait instead of calling `std::fs`
//! directly. Production uses [`StdFs`] (a zero-cost passthrough); the
//! crash-consistency torture harness swaps in a [`FaultFs`] that
//! deterministically injects scripted faults:
//!
//! * **error at op N** — the Nth filesystem operation (globally, or the
//!   Nth of one [`FsOp`] kind) fails with an injected `io::Error`;
//! * **error once, then ok** — the same, but only the first matching
//!   operation fails; a retry succeeds (transient `EIO`);
//! * **torn write** — a write persists only a prefix of its bytes, then
//!   reports failure (torn page / short write);
//! * **crash point** — from op N onward *every* operation fails: the
//!   process's view of the directory is frozen at whatever the first
//!   N−1 operations made durable, exactly like a power cut mid-protocol.
//!
//! Because faults are keyed by a deterministic operation counter, a
//! harness can run a protocol once fault-free to learn its op count,
//! then sweep a crash point across **every** operation — which is what
//! `tests/crash_consistency.rs` does to prove the save/flush/compact
//! commit protocol never leaves a third state.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The kinds of filesystem operation the persistence layer performs —
/// each a distinct fault point a [`FaultFs`] script can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FsOp {
    /// Whole-file read.
    Read,
    /// Whole-file write (create/truncate).
    Write,
    /// `fsync` of a file's contents.
    FsyncFile,
    /// Atomic rename within a directory.
    Rename,
    /// File removal.
    RemoveFile,
    /// `fsync` of a directory (making renames durable).
    FsyncDir,
    /// Recursive directory creation.
    CreateDirAll,
}

impl FsOp {
    /// Index into per-kind counters.
    fn idx(self) -> usize {
        match self {
            Self::Read => 0,
            Self::Write => 1,
            Self::FsyncFile => 2,
            Self::Rename => 3,
            Self::RemoveFile => 4,
            Self::FsyncDir => 5,
            Self::CreateDirAll => 6,
        }
    }
}

const NUM_KINDS: usize = 7;

/// The filesystem surface of the persistence layer. Every durable-path
/// byte the index writes or validates flows through one of these
/// methods, so an implementation sees (and may fail) each protocol step
/// individually.
///
/// Implementations must be shareable across threads — the seal writes
/// partitions from a parallel map.
pub trait ClimberFs: fmt::Debug + Send + Sync {
    /// Reads the entire file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Writes `bytes` to `path`, creating or truncating it. Not atomic
    /// and not synced — compose with [`ClimberFs::fsync_file`] and
    /// [`ClimberFs::rename`] (or use [`write_file_atomic_with`]) for
    /// durable commits.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Forces the contents of `path` to stable storage.
    fn fsync_file(&self, path: &Path) -> io::Result<()>;

    /// Renames `from` to `to` (atomic within a directory on POSIX).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Forces the directory entry metadata of `path` to stable storage
    /// (a rename is only durable once its parent directory is synced).
    fn fsync_dir(&self, path: &Path) -> io::Result<()>;

    /// Creates `path` and any missing ancestors.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
}

/// A shared, thread-safe filesystem handle.
pub type FsRef = Arc<dyn ClimberFs>;

/// The production filesystem: direct passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

impl ClimberFs for StdFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn fsync_file(&self, path: &Path) -> io::Result<()> {
        // Reopen-to-sync keeps the trait object-safe (no handles cross
        // the boundary); the kernel syncs the inode, not the descriptor.
        fs::OpenOptions::new().write(true).open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn fsync_dir(&self, path: &Path) -> io::Result<()> {
        #[cfg(unix)]
        {
            fs::File::open(path)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            Ok(())
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }
}

/// The process-wide shared [`StdFs`] handle every non-injected
/// constructor defaults to.
pub fn std_fs() -> FsRef {
    static STD: OnceLock<FsRef> = OnceLock::new();
    STD.get_or_init(|| Arc::new(StdFs)).clone()
}

/// What an armed [`FaultFs`] rule does when its trigger matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the triggering operation and every later operation in the
    /// trigger's scope (all ops for an [`FaultTrigger::Op`] trigger, all
    /// ops of the kind for [`FaultTrigger::Kind`]) — a persistently bad
    /// device.
    Error,
    /// Fail the first matching operation only; retries succeed (a
    /// transient `EIO`).
    ErrorOnce,
    /// For a write: persist only the first `keep` bytes, then report
    /// failure — a torn/short write. Other kinds degrade to
    /// [`FaultAction::ErrorOnce`].
    Torn {
        /// Bytes of the write that reach the disk.
        keep: usize,
    },
    /// Freeze the disk: this operation and **all** later ones fail, so
    /// the directory stays exactly as the preceding operations left it —
    /// a power cut at this protocol step.
    Crash,
    /// A torn write *followed by* a crash: the first `keep` bytes land,
    /// then the disk freezes. The torn-write fault point a pure
    /// [`FaultAction::Crash`] can't reach (a crashed `write` persists
    /// nothing).
    TornCrash {
        /// Bytes of the write that reach the disk before the freeze.
        keep: usize,
    },
}

/// When a [`FaultFs`] rule applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// The Nth armed operation overall (0-based).
    Op(u64),
    /// The Nth armed operation of one kind (0-based).
    Kind(FsOp, u64),
}

impl FaultTrigger {
    fn matches(self, op: FsOp, global: u64, of_kind: u64) -> bool {
        match self {
            Self::Op(n) => global == n,
            Self::Kind(k, n) => k == op && of_kind == n,
        }
    }

    /// Persistent form: the trigger point and everything after it in the
    /// trigger's scope (used by [`FaultAction::Error`]).
    fn matches_at_or_after(self, op: FsOp, global: u64, of_kind: u64) -> bool {
        match self {
            Self::Op(n) => global >= n,
            Self::Kind(k, n) => k == op && of_kind >= n,
        }
    }
}

#[derive(Debug)]
struct Rule {
    trigger: FaultTrigger,
    action: FaultAction,
    fired: bool,
}

/// A deterministic fault-injecting filesystem wrapping another
/// [`ClimberFs`].
///
/// Operations are counted (globally and per [`FsOp`] kind) only while
/// the injector is **armed**, so a harness can set a directory up, call
/// [`FaultFs::arm`], and know op index 0 is the first operation of the
/// protocol under test. A fault-free armed run records the op count
/// ([`FaultFs::op_count`]) and trace ([`FaultFs::trace`]); a sweep then
/// replays the protocol with [`FaultAction::Crash`] (or any other
/// action) scripted at each index in turn.
#[derive(Debug)]
pub struct FaultFs {
    inner: FsRef,
    armed: AtomicBool,
    crashed: AtomicBool,
    global: AtomicU64,
    per_kind: [AtomicU64; NUM_KINDS],
    rules: Mutex<Vec<Rule>>,
    trace: Mutex<Vec<(FsOp, PathBuf)>>,
}

/// The error message every injected failure carries — tests assert on
/// it to distinguish injected faults from real I/O problems.
pub const INJECTED_FAULT: &str = "injected fault";

fn injected(op: FsOp, path: &Path) -> io::Error {
    io::Error::other(format!("{INJECTED_FAULT}: {op:?} {}", path.display()))
}

impl FaultFs {
    /// Wraps `inner`, starting **disarmed**: operations pass through
    /// uncounted until [`FaultFs::arm`].
    pub fn new(inner: FsRef) -> Arc<Self> {
        Arc::new(Self {
            inner,
            armed: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            global: AtomicU64::new(0),
            per_kind: Default::default(),
            rules: Mutex::new(Vec::new()),
            trace: Mutex::new(Vec::new()),
        })
    }

    /// Wraps the standard filesystem.
    pub fn over_std() -> Arc<Self> {
        Self::new(std_fs())
    }

    /// Starts counting operations (op index 0 = the next operation).
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Stops counting; subsequent operations pass through unchecked
    /// (unless the disk already crashed, which is permanent).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Scripts `action` at armed-op trigger `trigger`.
    pub fn inject(&self, trigger: FaultTrigger, action: FaultAction) {
        self.rules.lock().expect("fault rules").push(Rule {
            trigger,
            action,
            fired: false,
        });
    }

    /// Scripts a [`FaultAction::Crash`] at global armed op `n`.
    pub fn crash_at(&self, n: u64) {
        self.inject(FaultTrigger::Op(n), FaultAction::Crash);
    }

    /// Scripts a [`FaultAction::TornCrash`] at global armed op `n`.
    pub fn torn_crash_at(&self, n: u64, keep: usize) {
        self.inject(FaultTrigger::Op(n), FaultAction::TornCrash { keep });
    }

    /// Total armed operations seen so far.
    pub fn op_count(&self) -> u64 {
        self.global.load(Ordering::SeqCst)
    }

    /// Armed operations of `kind` seen so far.
    pub fn op_count_of(&self, kind: FsOp) -> u64 {
        self.per_kind[kind.idx()].load(Ordering::SeqCst)
    }

    /// True once a crash rule fired; every later operation fails.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// The `(kind, path)` of every armed operation, in order.
    pub fn trace(&self) -> Vec<(FsOp, PathBuf)> {
        self.trace.lock().expect("fault trace").clone()
    }

    /// Gate called before every operation. Returns the action to apply
    /// to this op, or an error for plain failures.
    fn check(&self, op: FsOp, path: &Path) -> io::Result<Option<FaultAction>> {
        if !self.armed.load(Ordering::SeqCst) {
            if self.is_crashed() {
                return Err(injected(op, path));
            }
            return Ok(None);
        }
        let global = self.global.fetch_add(1, Ordering::SeqCst);
        let of_kind = self.per_kind[op.idx()].fetch_add(1, Ordering::SeqCst);
        self.trace
            .lock()
            .expect("fault trace")
            .push((op, path.to_path_buf()));
        if self.is_crashed() {
            return Err(injected(op, path));
        }
        let mut rules = self.rules.lock().expect("fault rules");
        for rule in rules.iter_mut() {
            if rule.action == FaultAction::Error {
                if rule.trigger.matches_at_or_after(op, global, of_kind) {
                    return Err(injected(op, path));
                }
                continue;
            }
            if !rule.trigger.matches(op, global, of_kind) {
                continue;
            }
            match rule.action {
                FaultAction::Error => unreachable!("handled above"),
                FaultAction::ErrorOnce => {
                    if !rule.fired {
                        rule.fired = true;
                        return Err(injected(op, path));
                    }
                }
                FaultAction::Torn { keep } => {
                    if !rule.fired {
                        rule.fired = true;
                        if op == FsOp::Write {
                            return Ok(Some(FaultAction::Torn { keep }));
                        }
                        return Err(injected(op, path));
                    }
                }
                FaultAction::Crash => {
                    self.crashed.store(true, Ordering::SeqCst);
                    return Err(injected(op, path));
                }
                FaultAction::TornCrash { keep } => {
                    self.crashed.store(true, Ordering::SeqCst);
                    if op == FsOp::Write {
                        return Ok(Some(FaultAction::TornCrash { keep }));
                    }
                    return Err(injected(op, path));
                }
            }
        }
        Ok(None)
    }
}

impl ClimberFs for FaultFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.check(FsOp::Read, path)?;
        self.inner.read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.check(FsOp::Write, path)? {
            Some(FaultAction::Torn { keep } | FaultAction::TornCrash { keep }) => {
                // The torn prefix really lands on disk; the caller still
                // sees a failure — exactly a short write cut by a fault.
                let keep = keep.min(bytes.len());
                self.inner.write(path, &bytes[..keep])?;
                Err(injected(FsOp::Write, path))
            }
            _ => self.inner.write(path, bytes),
        }
    }

    fn fsync_file(&self, path: &Path) -> io::Result<()> {
        self.check(FsOp::FsyncFile, path)?;
        self.inner.fsync_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.check(FsOp::Rename, from)?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.check(FsOp::RemoveFile, path)?;
        self.inner.remove_file(path)
    }

    fn fsync_dir(&self, path: &Path) -> io::Result<()> {
        self.check(FsOp::FsyncDir, path)?;
        self.inner.fsync_dir(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.check(FsOp::CreateDirAll, path)?;
        self.inner.create_dir_all(path)
    }
}

/// A sibling temp path for `path` that no concurrent writer shares: the
/// name carries the process id and a process-wide sequence number.
pub fn tmp_sibling(path: &Path) -> PathBuf {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    path.with_extension(format!(
        "{}.tmp.{}.{seq}",
        path.extension().and_then(|e| e.to_str()).unwrap_or("dat"),
        std::process::id()
    ))
}

/// True when `name` is a temp file left by an interrupted
/// [`write_file_atomic_with`] — safe to sweep at open time.
pub fn is_tmp_name(name: &str) -> bool {
    name.contains(".tmp.")
}

/// Writes `bytes` to `path` crash-safely through `fs`: sibling temp
/// file, fsync, atomic rename, parent-directory fsync — every step an
/// individually injectable fault point. On failure the temp file is
/// removed best-effort (a crash may keep it; open-time recovery sweeps
/// strays).
pub fn write_file_atomic_with(fs: &dyn ClimberFs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    let cleanup = |e: io::Error| {
        fs.remove_file(&tmp).ok();
        e
    };
    fs.write(&tmp, bytes).map_err(cleanup)?;
    fs.fsync_file(&tmp).map_err(cleanup)?;
    fs.rename(&tmp, path).map_err(cleanup)?;
    // A rename is directory metadata: without fsyncing the parent, a
    // power cut can durably keep the file data yet lose the rename,
    // breaking the "manifest visible => partitions visible" ordering.
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs.fsync_dir(parent)?;
    }
    Ok(())
}

/// The plain (non-injected) `write_file_atomic` used since PR 3 —
/// delegates to [`write_file_atomic_with`] over [`StdFs`], but keeps
/// one `std`-only fast path detail: the temp file is written and synced
/// through a single open handle.
pub fn write_file_atomic_std(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path).inspect_err(|_| {
        fs::remove_file(&tmp).ok();
    })?;
    #[cfg(unix)]
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::File::open(parent)?.sync_all()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("climber-fsio-{tag}-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn std_fs_roundtrip_and_atomic_write() {
        let dir = tmp_dir("std");
        let fs_ = std_fs();
        let p = dir.join("a.bin");
        write_file_atomic_with(&*fs_, &p, b"hello").unwrap();
        assert_eq!(fs_.read(&p).unwrap(), b"hello");
        fs_.rename(&p, &dir.join("b.bin")).unwrap();
        assert!(fs_.read(&p).is_err());
        fs_.remove_file(&dir.join("b.bin")).unwrap();
        // No temp droppings.
        assert!(fs::read_dir(&dir).unwrap().next().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disarmed_faultfs_is_a_passthrough() {
        let dir = tmp_dir("disarmed");
        let ff = FaultFs::over_std();
        ff.crash_at(0);
        let p = dir.join("x");
        ff.write(&p, b"ok").unwrap();
        assert_eq!(ff.op_count(), 0, "disarmed ops are not counted");
        ff.arm();
        assert!(ff.write(&p, b"boom").is_err());
        assert!(ff.is_crashed());
        assert_eq!(
            fs::read(&p).unwrap(),
            b"ok",
            "crashed write persisted nothing"
        );
        // After a crash every op fails, armed or not.
        ff.disarm();
        assert!(ff.read(&p).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_once_then_ok() {
        let dir = tmp_dir("once");
        let ff = FaultFs::over_std();
        ff.inject(FaultTrigger::Kind(FsOp::Write, 1), FaultAction::ErrorOnce);
        ff.arm();
        let p = dir.join("y");
        ff.write(&p, b"one").unwrap();
        let err = ff.write(&p, b"two").unwrap_err();
        assert!(err.to_string().contains(INJECTED_FAULT));
        assert_eq!(fs::read(&p).unwrap(), b"one", "failed write left old bytes");
        ff.write(&p, b"three").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"three");
        assert_eq!(ff.op_count_of(FsOp::Write), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistent_error_fails_every_match() {
        let dir = tmp_dir("persist");
        let ff = FaultFs::over_std();
        ff.inject(FaultTrigger::Kind(FsOp::RemoveFile, 0), FaultAction::Error);
        ff.arm();
        let p = dir.join("z");
        ff.write(&p, b"v").unwrap();
        assert!(ff.remove_file(&p).is_err());
        assert!(ff.remove_file(&p).is_err(), "Error rules never clear");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_persists_prefix_only() {
        let dir = tmp_dir("torn");
        let ff = FaultFs::over_std();
        ff.inject(FaultTrigger::Op(0), FaultAction::Torn { keep: 3 });
        ff.arm();
        let p = dir.join("t");
        assert!(ff.write(&p, b"abcdef").is_err());
        assert_eq!(fs::read(&p).unwrap(), b"abc");
        assert!(!ff.is_crashed(), "a torn write alone is not a crash");
        ff.write(&p, b"abcdef").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"abcdef");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_crash_freezes_after_prefix() {
        let dir = tmp_dir("torncrash");
        let ff = FaultFs::over_std();
        ff.torn_crash_at(0, 2);
        ff.arm();
        let p = dir.join("t");
        assert!(ff.write(&p, b"abcdef").is_err());
        assert_eq!(fs::read(&p).unwrap(), b"ab");
        assert!(ff.is_crashed());
        assert!(ff.write(&p, b"later").is_err());
        assert_eq!(fs::read(&p).unwrap(), b"ab", "frozen disk never changes");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_cleans_temp_on_injected_fsync_failure() {
        let dir = tmp_dir("cleanup");
        let ff = FaultFs::over_std();
        ff.inject(
            FaultTrigger::Kind(FsOp::FsyncFile, 0),
            FaultAction::ErrorOnce,
        );
        ff.arm();
        let p = dir.join("target.bin");
        assert!(write_file_atomic_with(&*ff, &p, b"data").is_err());
        assert!(!p.exists(), "target never appeared");
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(names.is_empty(), "temp cleaned: {names:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_and_counts_line_up() {
        let dir = tmp_dir("trace");
        let ff = FaultFs::over_std();
        ff.arm();
        let p = dir.join("f");
        ff.write(&p, b"1").unwrap();
        ff.fsync_file(&p).unwrap();
        ff.read(&p).unwrap();
        assert_eq!(ff.op_count(), 3);
        let trace = ff.trace();
        assert_eq!(
            trace.iter().map(|(op, _)| *op).collect::<Vec<_>>(),
            vec![FsOp::Write, FsOp::FsyncFile, FsOp::Read]
        );
        assert!(trace.iter().all(|(_, path)| path == &p));
        fs::remove_dir_all(&dir).ok();
    }
}
