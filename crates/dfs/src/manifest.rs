//! The versioned on-disk index manifest.
//!
//! A persisted CLIMBER index directory holds one file per partition
//! (`part_XXXXXXXX.clbp`), the serialised skeleton (`skeleton.clsk`), and
//! this module's `MANIFEST.clmf` — the commit record that makes the
//! directory a *valid index* rather than a pile of files:
//!
//! ```text
//! magic "CLMF" | format_version u32 | flags u32 (reserved)
//! fingerprint u64             — dataset fingerprint (see [`Manifest::fingerprint_of`])
//! num_records u64 | max_series_id u64 (u64::MAX = none) | series_len u32
//! generation u64              — segment generation (v2+; bumped per flush)
//! journal flag u8 (+ bytes u64, xxh64 u64 when 1)   — update journal (v2+)
//! config blob  (u64 len + bytes)   — opaque encoded IndexConfig
//! skeleton: bytes u64, xxh64 u64
//! partition count u32
//!   per partition: id u32, bytes u64, xxh64 u64, records u64
//! manifest xxh64 u64          — checksum of every preceding byte
//! ```
//!
//! All integers little-endian. Writers go through [`write_file_atomic`]
//! (temp file + `sync_all` + atomic rename) with the manifest written
//! *last*, so a crash mid-save leaves either the previous valid index or
//! no manifest — never a torn one. Readers validate magic, version,
//! the manifest's own trailing checksum, and (via
//! [`crate::store::DiskStore::open_read_only`]) every partition file's
//! size and checksum, reporting failures as typed [`OpenError`]s.
//!
//! Version/compat policy: `format_version` is bumped on any layout change;
//! readers accept only versions `<= FORMAT_VERSION` they know how to parse
//! and reject the future with [`OpenError::UnsupportedVersion`] rather
//! than guessing.

use crate::format::{ByteReader, Decode, Encode};
use crate::fsio::ClimberFs;
use crate::store::PartitionId;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// File name of the manifest inside an index directory.
pub const MANIFEST_FILE: &str = "MANIFEST.clmf";

/// Magic prefix of a manifest file.
pub const MANIFEST_MAGIC: [u8; 4] = *b"CLMF";

/// Newest on-disk index format this build reads and writes. Version 2
/// added the segment generation and the optional update-journal entry;
/// version-1 directories are still read (generation 0, no journal).
pub const FORMAT_VERSION: u32 = 2;

// ---------------------------------------------------------------------------
// xxHash64
// ---------------------------------------------------------------------------

const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn xxh_round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline]
fn xxh_merge(h: u64, v: u64) -> u64 {
    (h ^ xxh_round(0, v)).wrapping_mul(P1).wrapping_add(P4)
}

#[inline]
fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

/// xxHash64 of `data` under `seed` — the integrity checksum of every file
/// a persisted index references. Hand-rolled from the XXH64 specification
/// (no registry access for the `xxhash-rust` crate); it is a *corruption
/// detector*, not a cryptographic commitment.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let mut rest = data;
    let mut h: u64;
    if rest.len() >= 32 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);
        while rest.len() >= 32 {
            v1 = xxh_round(v1, le_u64(&rest[0..8]));
            v2 = xxh_round(v2, le_u64(&rest[8..16]));
            v3 = xxh_round(v3, le_u64(&rest[16..24]));
            v4 = xxh_round(v4, le_u64(&rest[24..32]));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        for v in [v1, v2, v3, v4] {
            h = xxh_merge(h, v);
        }
    } else {
        h = seed.wrapping_add(P5);
    }
    h = h.wrapping_add(data.len() as u64);
    while rest.len() >= 8 {
        h ^= xxh_round(0, le_u64(rest));
        h = h.rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h ^= (u32::from_le_bytes(rest[..4].try_into().unwrap()) as u64).wrapping_mul(P1);
        h = h.rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
        rest = &rest[4..];
    }
    for &b in rest {
        h ^= (b as u64).wrapping_mul(P5);
        h = h.rotate_left(11).wrapping_mul(P1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^= h >> 32;
    h
}

// ---------------------------------------------------------------------------
// Typed open errors
// ---------------------------------------------------------------------------

/// Everything that can go wrong opening a persisted index. Every
/// corruption and incompatibility mode is a distinct variant so callers
/// (and the corruption test suite) can tell *what* is broken; opening
/// never panics and never yields a silently wrong index.
#[derive(Debug)]
pub enum OpenError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// The directory has no manifest (not a persisted index, or a save
    /// that never reached its commit point).
    MissingManifest(PathBuf),
    /// The manifest does not start with `CLMF`.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The manifest was written by a newer format than this build reads.
    UnsupportedVersion {
        /// Version recorded in the manifest.
        found: u32,
        /// Newest version this build supports.
        supported: u32,
    },
    /// The manifest is structurally damaged (truncated, trailing bytes,
    /// or its own checksum does not match).
    CorruptManifest(String),
    /// A partition file listed in the manifest does not exist.
    MissingPartition {
        /// The missing partition.
        id: PartitionId,
        /// Where it was expected.
        path: PathBuf,
    },
    /// A partition file's size differs from the manifest's byte range.
    PartitionSizeMismatch {
        /// The damaged partition.
        id: PartitionId,
        /// Bytes the manifest promises.
        expected: u64,
        /// Bytes actually on disk.
        found: u64,
    },
    /// A file's content hash differs from the manifest (bit rot, torn
    /// write, or tampering).
    ChecksumMismatch {
        /// Which file ("partition 3", "skeleton", ...).
        what: String,
        /// Checksum the manifest promises.
        expected: u64,
        /// Checksum of the bytes on disk.
        found: u64,
    },
    /// The skeleton file failed to decode.
    CorruptSkeleton(String),
    /// The manifest and the skeleton disagree about the index shape
    /// (e.g. different partition sets).
    StoreMismatch(String),
    /// The manifest references an update journal that does not exist.
    MissingJournal(PathBuf),
    /// The update journal failed to decode.
    CorruptJournal(String),
    /// The update journal belongs to a different segment generation than
    /// the manifest — files from two different saves were mixed, so the
    /// journal's pending updates cannot be trusted against these
    /// partitions.
    StaleGeneration {
        /// Generation the manifest was sealed at.
        manifest: u64,
        /// Generation embedded in the journal file.
        journal: u64,
    },
    /// One shard of a sharded index failed to open. Wraps the shard's own
    /// typed failure so callers see both *which* shard is broken and
    /// *how* — a missing shard directory surfaces as
    /// `Shard { source: MissingManifest, .. }`, a corrupt one as whatever
    /// the per-shard validation found.
    Shard {
        /// The failing shard's index (its `shard-NNN` directory).
        shard: usize,
        /// Why that shard failed to open.
        source: Box<OpenError>,
    },
    /// The shard-set super-manifest (`SHARDS.clsm`) is structurally
    /// damaged, or disagrees with the shards it describes (wrong checksum,
    /// truncation, generation drift against a shard's own manifest).
    CorruptShardSet(String),
}

impl fmt::Display for OpenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error opening index: {e}"),
            Self::MissingManifest(p) => write!(f, "no index manifest at {}", p.display()),
            Self::BadMagic { found } => write!(f, "bad manifest magic {found:?}"),
            Self::UnsupportedVersion { found, supported } => write!(
                f,
                "index format version {found} is newer than supported {supported}"
            ),
            Self::CorruptManifest(m) => write!(f, "corrupt manifest: {m}"),
            Self::MissingPartition { id, path } => {
                write!(f, "partition {id} missing at {}", path.display())
            }
            Self::PartitionSizeMismatch {
                id,
                expected,
                found,
            } => write!(
                f,
                "partition {id} is {found} bytes, manifest says {expected}"
            ),
            Self::ChecksumMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "{what} checksum {found:#018x} != manifest {expected:#018x}"
            ),
            Self::CorruptSkeleton(m) => write!(f, "corrupt skeleton: {m}"),
            Self::StoreMismatch(m) => write!(f, "manifest/skeleton mismatch: {m}"),
            Self::MissingJournal(p) => write!(f, "update journal missing at {}", p.display()),
            Self::CorruptJournal(m) => write!(f, "corrupt update journal: {m}"),
            Self::StaleGeneration { manifest, journal } => write!(
                f,
                "update journal is from segment generation {journal}, manifest was sealed at {manifest}"
            ),
            Self::Shard { shard, source } => write!(f, "shard {shard} failed to open: {source}"),
            Self::CorruptShardSet(m) => write!(f, "corrupt shard set: {m}"),
        }
    }
}

impl std::error::Error for OpenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Shard { source, .. } => Some(&**source),
            _ => None,
        }
    }
}

impl From<io::Error> for OpenError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// Size and checksum of one referenced file (the skeleton).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileEntry {
    /// File size in bytes.
    pub bytes: u64,
    /// xxHash64 of the file's content (seed 0).
    pub checksum: u64,
}

/// One partition file's byte range and integrity data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionEntry {
    /// The partition id (`part_{id:08}.clbp`).
    pub id: PartitionId,
    /// Encoded size in bytes.
    pub bytes: u64,
    /// xxHash64 of the encoded partition (seed 0).
    pub checksum: u64,
    /// Records stored inside.
    pub records: u64,
}

/// The index directory's commit record: format version, build
/// configuration, dataset fingerprint, and the byte range + checksum of
/// every file the index is made of.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// On-disk format version this directory was written with.
    pub format_version: u32,
    /// Opaque encoded `IndexConfig` (decoded by `climber-index`; this
    /// crate sits below the config type in the dependency graph).
    pub config: Vec<u8>,
    /// Fingerprint of the indexed dataset (see [`Manifest::fingerprint_of`]).
    pub fingerprint: u64,
    /// Total records across partitions.
    pub num_records: u64,
    /// Largest stored series id, `None` for an empty index; reopening
    /// seeds the append id counter from this without scanning.
    pub max_series_id: Option<u64>,
    /// Length of every indexed series.
    pub series_len: u32,
    /// Segment generation: how many flush/compaction folds the sealed
    /// partitions have absorbed. A persisted update journal embeds the
    /// generation it was written against; opening rejects a mismatch as
    /// [`OpenError::StaleGeneration`]. Version-1 directories read as 0.
    pub generation: u64,
    /// The update journal (pending delta records + tombstones), when one
    /// was persisted. `None` means the index was sealed with no pending
    /// updates. Always `None` for version-1 directories.
    pub journal: Option<FileEntry>,
    /// The serialised skeleton file.
    pub skeleton: FileEntry,
    /// Every partition file, ascending by id.
    pub partitions: Vec<PartitionEntry>,
}

impl Manifest {
    /// Path of the manifest inside `dir`.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    /// The entry for partition `id`, if listed.
    pub fn partition(&self, id: PartitionId) -> Option<&PartitionEntry> {
        self.partitions.iter().find(|e| e.id == id)
    }

    /// All listed partition ids, in manifest order.
    pub fn partition_ids(&self) -> Vec<PartitionId> {
        self.partitions.iter().map(|e| e.id).collect()
    }

    /// Deterministic dataset fingerprint: xxHash64 over the series length,
    /// record count and every partition's `(id, records, checksum)`. Two
    /// saves of the same built index agree; any change to the stored data
    /// changes it.
    pub fn fingerprint_of(series_len: u32, num_records: u64, partitions: &[PartitionEntry]) -> u64 {
        let mut buf = Vec::with_capacity(16 + partitions.len() * 20);
        (series_len).encode(&mut buf);
        num_records.encode(&mut buf);
        for e in partitions {
            e.id.encode(&mut buf);
            e.records.encode(&mut buf);
            e.checksum.encode(&mut buf);
        }
        xxh64(&buf, 0x0C11_B3E5)
    }

    /// Serialises the manifest, including its trailing self-checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MANIFEST_MAGIC);
        self.format_version.encode(&mut out);
        0u32.encode(&mut out); // flags, reserved
        self.fingerprint.encode(&mut out);
        self.num_records.encode(&mut out);
        self.max_series_id.unwrap_or(u64::MAX).encode(&mut out);
        self.series_len.encode(&mut out);
        self.generation.encode(&mut out);
        match &self.journal {
            Some(j) => {
                1u8.encode(&mut out);
                j.bytes.encode(&mut out);
                j.checksum.encode(&mut out);
            }
            None => 0u8.encode(&mut out),
        }
        self.config.encode(&mut out);
        self.skeleton.bytes.encode(&mut out);
        self.skeleton.checksum.encode(&mut out);
        (self.partitions.len() as u32).encode(&mut out);
        for e in &self.partitions {
            e.id.encode(&mut out);
            e.bytes.encode(&mut out);
            e.checksum.encode(&mut out);
            e.records.encode(&mut out);
        }
        let sum = xxh64(&out, 0);
        sum.encode(&mut out);
        out
    }

    /// Parses and validates a manifest: magic, version, self-checksum,
    /// field structure. Inverse of [`Manifest::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, OpenError> {
        if bytes.len() < 4 {
            return Err(OpenError::CorruptManifest(format!(
                "{} bytes is shorter than the magic",
                bytes.len()
            )));
        }
        if bytes[0..4] != MANIFEST_MAGIC {
            return Err(OpenError::BadMagic {
                found: bytes[0..4].try_into().unwrap(),
            });
        }
        if bytes.len() < 8 {
            return Err(OpenError::CorruptManifest("truncated at version".into()));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version > FORMAT_VERSION {
            return Err(OpenError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        // Trailing self-checksum: catches truncation and bit flips in one
        // check, before any field is trusted.
        if bytes.len() < 8 + 8 {
            return Err(OpenError::CorruptManifest(
                "truncated before checksum".into(),
            ));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        let actual = xxh64(body, 0);
        if stored != actual {
            return Err(OpenError::CorruptManifest(format!(
                "self-checksum {actual:#018x} != stored {stored:#018x}"
            )));
        }

        let mut r = ByteReader::new(&body[8..]);
        let parse = |e: String| OpenError::CorruptManifest(e);
        let flags = r.u32().map_err(parse)?;
        if flags != 0 {
            return Err(OpenError::CorruptManifest(format!(
                "unknown flags {flags:#x}"
            )));
        }
        let fingerprint = r.u64().map_err(parse)?;
        let num_records = r.u64().map_err(parse)?;
        let max_raw = r.u64().map_err(parse)?;
        let series_len = r.u32().map_err(parse)?;
        // Version 1 predates mutable segments: no generation field and no
        // journal entry, so such a directory reads as generation 0 with
        // nothing pending.
        let (generation, journal) = if version >= 2 {
            let generation = r.u64().map_err(parse)?;
            let journal = match r.u8().map_err(parse)? {
                0 => None,
                1 => Some(FileEntry {
                    bytes: r.u64().map_err(parse)?,
                    checksum: r.u64().map_err(parse)?,
                }),
                t => {
                    return Err(OpenError::CorruptManifest(format!(
                        "unknown journal flag {t}"
                    )))
                }
            };
            (generation, journal)
        } else {
            (0, None)
        };
        let config = Vec::<u8>::decode(&mut r).map_err(parse)?;
        let skeleton = FileEntry {
            bytes: r.u64().map_err(parse)?,
            checksum: r.u64().map_err(parse)?,
        };
        let n = r.u32().map_err(parse)? as usize;
        let mut partitions = Vec::with_capacity(n);
        for _ in 0..n {
            partitions.push(PartitionEntry {
                id: r.u32().map_err(parse)?,
                bytes: r.u64().map_err(parse)?,
                checksum: r.u64().map_err(parse)?,
                records: r.u64().map_err(parse)?,
            });
        }
        r.expect_end().map_err(parse)?;
        Ok(Self {
            format_version: version,
            config,
            fingerprint,
            num_records,
            max_series_id: (max_raw != u64::MAX).then_some(max_raw),
            series_len,
            generation,
            journal,
            skeleton,
            partitions,
        })
    }

    /// Writes the manifest to `dir` via temp file + atomic rename. This is
    /// the save protocol's commit point: call it only after every file the
    /// manifest references is durably in place (or staged under its
    /// roll-forward `.new` sibling).
    pub fn write_atomic(&self, dir: &Path) -> io::Result<()> {
        write_file_atomic(&Self::path(dir), &self.encode())
    }

    /// [`write_atomic`](Self::write_atomic) through an injectable
    /// filesystem — every protocol step (temp write, fsync, rename,
    /// directory fsync) is a distinct fault point.
    pub fn write_atomic_with(&self, fs: &dyn ClimberFs, dir: &Path) -> io::Result<()> {
        crate::fsio::write_file_atomic_with(fs, &Self::path(dir), &self.encode())
    }

    /// Reads and validates the manifest of `dir`.
    pub fn load(dir: &Path) -> Result<Self, OpenError> {
        Self::load_with(&crate::fsio::StdFs, dir)
    }

    /// [`load`](Self::load) through an injectable filesystem.
    pub fn load_with(fs: &dyn ClimberFs, dir: &Path) -> Result<Self, OpenError> {
        let path = Self::path(dir);
        let bytes = match fs.read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(OpenError::MissingManifest(path))
            }
            Err(e) => return Err(OpenError::Io(e)),
        };
        Self::decode(&bytes)
    }
}

/// Writes `bytes` to `path` crash-safely: a sibling temp file is written,
/// fsynced, then renamed over the target (atomic on POSIX within one
/// directory), and the parent directory is fsynced so the rename itself
/// is durable before the call returns. The temp name carries the process
/// id *and* a process-wide counter, so concurrent savers of the same
/// path never share a temp file — the last full rename wins.
///
/// This is the `std`-only fast path; injectable callers go through
/// [`crate::fsio::write_file_atomic_with`], which performs the same
/// protocol step by step through a [`ClimberFs`].
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    crate::fsio::write_file_atomic_std(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn sample_manifest() -> Manifest {
        let partitions = vec![
            PartitionEntry {
                id: 0,
                bytes: 120,
                checksum: 0xABCD,
                records: 4,
            },
            PartitionEntry {
                id: 3,
                bytes: 64,
                checksum: 0x1234,
                records: 1,
            },
        ];
        Manifest {
            format_version: FORMAT_VERSION,
            config: vec![1, 2, 3, 4],
            fingerprint: Manifest::fingerprint_of(16, 5, &partitions),
            num_records: 5,
            max_series_id: Some(4),
            series_len: 16,
            generation: 3,
            journal: Some(FileEntry {
                bytes: 48,
                checksum: 0xFACE,
            }),
            skeleton: FileEntry {
                bytes: 99,
                checksum: 0x77,
            },
            partitions,
        }
    }

    #[test]
    fn xxh64_known_vector_and_structure() {
        // The published XXH64 test vector for empty input, seed 0.
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        // Long inputs take the 4-lane path; permutations must differ.
        let a: Vec<u8> = (0u8..100).collect();
        let mut b = a.clone();
        b[57] ^= 1;
        assert_ne!(xxh64(&a, 0), xxh64(&b, 0));
        assert_ne!(xxh64(&a, 0), xxh64(&a, 1), "seed changes the hash");
        assert_eq!(xxh64(&a, 9), xxh64(&a, 9), "deterministic");
        // Tail handling: every length around the 32/8/4-byte boundaries
        // hashes distinctly (prefix extension always changes the hash).
        let mut hashes: Vec<u64> = (0..40).map(|len| xxh64(&a[..len], 3)).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 40);
    }

    #[test]
    fn manifest_roundtrip() {
        let m = sample_manifest();
        let back = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn manifest_empty_index_roundtrip() {
        let mut m = sample_manifest();
        m.max_series_id = None;
        m.partitions.clear();
        m.num_records = 0;
        let back = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(back.max_series_id, None);
        assert!(back.partitions.is_empty());
    }

    #[test]
    fn manifest_without_journal_roundtrips() {
        let mut m = sample_manifest();
        m.journal = None;
        m.generation = 0;
        let back = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(back.journal, None);
        assert_eq!(back.generation, 0);
        assert_eq!(m, back);
    }

    /// A version-1 manifest (pre-segments layout: no generation, no
    /// journal entry) must still decode, reading as generation 0 with no
    /// journal — old directories stay openable and upgrade on next save.
    #[test]
    fn version_1_manifest_still_decodes() {
        let m = sample_manifest();
        let mut out = Vec::new();
        out.extend_from_slice(&MANIFEST_MAGIC);
        1u32.encode(&mut out); // the historical version
        0u32.encode(&mut out); // flags
        m.fingerprint.encode(&mut out);
        m.num_records.encode(&mut out);
        m.max_series_id.unwrap_or(u64::MAX).encode(&mut out);
        m.series_len.encode(&mut out);
        // v1 continues straight into the config blob
        m.config.encode(&mut out);
        m.skeleton.bytes.encode(&mut out);
        m.skeleton.checksum.encode(&mut out);
        (m.partitions.len() as u32).encode(&mut out);
        for e in &m.partitions {
            e.id.encode(&mut out);
            e.bytes.encode(&mut out);
            e.checksum.encode(&mut out);
            e.records.encode(&mut out);
        }
        let sum = xxh64(&out, 0);
        sum.encode(&mut out);

        let back = Manifest::decode(&out).unwrap();
        assert_eq!(back.format_version, 1);
        assert_eq!(back.generation, 0);
        assert_eq!(back.journal, None);
        assert_eq!(back.partitions, m.partitions);
        assert_eq!(back.config, m.config);
    }

    #[test]
    fn manifest_rejects_bad_magic() {
        let mut b = sample_manifest().encode();
        b[0] = b'X';
        assert!(matches!(
            Manifest::decode(&b),
            Err(OpenError::BadMagic { .. })
        ));
    }

    #[test]
    fn manifest_rejects_future_version() {
        let mut b = sample_manifest().encode();
        b[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        // Re-seal so the version check (not the checksum) fires.
        let body_len = b.len() - 8;
        let sum = xxh64(&b[..body_len], 0);
        b[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Manifest::decode(&b),
            Err(OpenError::UnsupportedVersion {
                found,
                supported: FORMAT_VERSION,
            }) if found == FORMAT_VERSION + 1
        ));
    }

    #[test]
    fn manifest_rejects_truncation_and_flips() {
        let b = sample_manifest().encode();
        for cut in [0, 3, 7, 12, b.len() / 2, b.len() - 1] {
            assert!(
                matches!(
                    Manifest::decode(&b[..cut]),
                    Err(OpenError::CorruptManifest(_) | OpenError::BadMagic { .. })
                ),
                "cut at {cut}"
            );
        }
        // A flipped byte anywhere past the version field trips the
        // self-checksum.
        for i in 8..b.len() {
            let mut bad = b.clone();
            bad[i] ^= 0x40;
            assert!(
                matches!(Manifest::decode(&bad), Err(OpenError::CorruptManifest(_))),
                "flip at {i}"
            );
        }
    }

    #[test]
    fn fingerprint_tracks_content() {
        let m = sample_manifest();
        let base = Manifest::fingerprint_of(16, 5, &m.partitions);
        assert_eq!(base, m.fingerprint);
        let mut other = m.partitions.clone();
        other[1].checksum ^= 1;
        assert_ne!(base, Manifest::fingerprint_of(16, 5, &other));
        assert_ne!(base, Manifest::fingerprint_of(17, 5, &m.partitions));
    }

    #[test]
    fn write_atomic_then_load() {
        let dir = std::env::temp_dir().join(format!("climber-manifest-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let m = sample_manifest();
        m.write_atomic(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), m);
        // No temp droppings left behind.
        let stray: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(stray.is_empty(), "temp files left: {stray:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_dir_is_typed() {
        let dir = std::env::temp_dir().join("climber-manifest-definitely-absent");
        assert!(matches!(
            Manifest::load(&dir),
            Err(OpenError::MissingManifest(_))
        ));
    }

    #[test]
    fn open_error_display_is_informative() {
        let e = OpenError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains('9'));
        let e = OpenError::ChecksumMismatch {
            what: "partition 3".into(),
            expected: 1,
            found: 2,
        };
        assert!(e.to_string().contains("partition 3"));
    }
}
