//! The cluster simulator: Spark-ish verbs over a deterministic worker pool.
//!
//! The index-build pipeline (Figure 6) is expressed with three primitives:
//!
//! * **narrow map** ([`Cluster::par_map`]) — order-preserving parallel map,
//!   the "local op" arrows of Figure 6;
//! * **shuffle** ([`Cluster::shuffle_by_key`]) — re-distribution by key, the
//!   "shuffling and re-distribution op" arrows (records moved are counted in
//!   [`IoStats`]);
//! * **broadcast** ([`Broadcast`]) — cheap shared read-only state (pivots
//!   and the index skeleton are broadcast to all workers in Step 4).
//!
//! Everything is deterministic: maps preserve input order and shuffles
//! return keys in sorted order, so a build produces identical output for any
//! worker count.

use crate::stats::IoStats;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A simulated compute cluster with a fixed worker count.
#[derive(Clone)]
pub struct Cluster {
    pool: Arc<rayon::ThreadPool>,
    workers: usize,
    stats: IoStats,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("workers", &self.workers)
            .finish()
    }
}

impl Cluster {
    /// Creates a cluster of `workers` workers reporting to fresh stats.
    pub fn new(workers: usize) -> Self {
        Self::with_stats(workers, IoStats::new())
    }

    /// Creates a cluster reporting to existing stats.
    pub fn with_stats(workers: usize, stats: IoStats) -> Self {
        assert!(workers > 0, "cluster needs at least one worker");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .build()
            .expect("failed to build worker pool");
        Self {
            pool: Arc::new(pool),
            workers,
            stats,
        }
    }

    /// Single-worker cluster (useful for deterministic debugging).
    pub fn local() -> Self {
        Self::new(1)
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The stats sink.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Runs `op` with this cluster's worker count installed as the ambient
    /// parallelism, so `rayon::scope` fan-outs composed by the caller (the
    /// index build's concurrent partition writes) use the same pool the
    /// cluster's own verbs do.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        self.pool.install(op)
    }

    /// Order-preserving parallel map (a narrow transformation: no data
    /// movement between workers).
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync + Send,
    {
        use rayon::prelude::*;
        self.pool.install(|| items.into_par_iter().map(f).collect())
    }

    /// Parallel for-each over borrowed items.
    pub fn par_for_each<T, F>(&self, items: &[T], f: F)
    where
        T: Sync,
        F: Fn(&T) + Sync + Send,
    {
        use rayon::prelude::*;
        self.pool.install(|| items.par_iter().for_each(f));
    }

    /// Shuffle: assigns a key to every item in parallel, then groups items
    /// by key. Returns keys in ascending order with items in input order
    /// (deterministic regardless of worker count). Every record crossing
    /// the (simulated) network is counted in the stats.
    pub fn shuffle_by_key<T, K, F>(&self, items: Vec<T>, key_fn: F) -> BTreeMap<K, Vec<T>>
    where
        T: Send,
        K: Ord + Send,
        F: Fn(&T) -> K + Sync + Send,
    {
        let n = items.len() as u64;
        let keyed: Vec<(K, T)> = self.par_map(items, |t| {
            let k = key_fn(&t);
            (k, t)
        });
        self.stats.on_shuffle(n);
        let mut out: BTreeMap<K, Vec<T>> = BTreeMap::new();
        for (k, t) in keyed {
            out.entry(k).or_default().push(t);
        }
        out
    }

    /// Runs a fold over chunks in parallel and merges the partial results
    /// (a combine-style aggregation).
    pub fn par_fold<T, A, F, M>(
        &self,
        items: &[T],
        init: impl Fn() -> A + Sync,
        f: F,
        merge: M,
    ) -> A
    where
        T: Sync,
        A: Send,
        F: Fn(A, &T) -> A + Sync + Send,
        M: Fn(A, A) -> A,
    {
        use rayon::prelude::*;
        let chunk = (items.len() / self.workers.max(1)).max(1);
        let partials: Vec<A> = self.pool.install(|| {
            items
                .par_chunks(chunk)
                .map(|c| c.iter().fold(init(), &f))
                .collect()
        });
        let mut it = partials.into_iter();
        let first = it.next().unwrap_or_else(&init);
        it.fold(first, merge)
    }
}

/// Read-only state shared with every worker — the Spark broadcast variable.
/// (§V Step 4: "both the set of pivots and the index skeleton are
/// broadcasted to all machines"; both are tiny and fit in memory.)
#[derive(Debug)]
pub struct Broadcast<T>(Arc<T>);

impl<T> Broadcast<T> {
    /// Wraps a value for broadcast.
    pub fn new(value: T) -> Self {
        Self(Arc::new(value))
    }
}

impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<T> std::ops::Deref for Broadcast<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let c = Cluster::new(4);
        let out = c.par_map((0..1000).collect(), |x: i32| x * 2);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as i32 * 2);
        }
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let items: Vec<u64> = (0..500).collect();
        let one = Cluster::new(1).shuffle_by_key(items.clone(), |&x| x % 7);
        let many = Cluster::new(8).shuffle_by_key(items, |&x| x % 7);
        assert_eq!(one, many);
    }

    #[test]
    fn shuffle_groups_by_key_in_order() {
        let c = Cluster::new(3);
        let groups = c.shuffle_by_key(vec![5u32, 1, 8, 3, 6], |&x| x % 2);
        assert_eq!(groups[&0], vec![8, 6]);
        assert_eq!(groups[&1], vec![5, 1, 3]);
    }

    #[test]
    fn shuffle_counts_records() {
        let c = Cluster::new(2);
        c.shuffle_by_key((0..42u32).collect(), |&x| x % 3);
        assert_eq!(c.stats().snapshot().records_shuffled, 42);
    }

    #[test]
    fn par_fold_sums() {
        let c = Cluster::new(4);
        let items: Vec<u64> = (1..=100).collect();
        let sum = c.par_fold(&items, || 0u64, |a, &x| a + x, |a, b| a + b);
        assert_eq!(sum, 5050);
    }

    #[test]
    fn par_fold_empty() {
        let c = Cluster::new(2);
        let items: Vec<u64> = vec![];
        assert_eq!(c.par_fold(&items, || 7u64, |a, &x| a + x, |a, b| a + b), 7);
    }

    #[test]
    fn broadcast_shares_value() {
        let b = Broadcast::new(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(*c, vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        Cluster::new(0);
    }

    #[test]
    fn install_scopes_worker_count() {
        let c = Cluster::new(3);
        assert_eq!(c.install(rayon::current_num_threads), 3);
        assert_eq!(c.install(|| 7), 7);
    }

    #[test]
    fn par_for_each_visits_all() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let c = Cluster::new(4);
        let sum = AtomicU64::new(0);
        let items: Vec<u64> = (0..100).collect();
        c.par_for_each(&items, |&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }
}
