//! The binary partition format.
//!
//! §VI, "Localized Record-Level Similarity": *"data records within each data
//! partition are organized such that all data series objects belonging to a
//! trie node are stored contiguously next to each other. The start offset of
//! each trie node cluster is maintained in a header section within the
//! partition."* This module implements exactly that layout:
//!
//! ```text
//! magic "CLBP" | version u32 | group_id u64 | series_len u32 | n_clusters u32
//! directory: n_clusters × (node_id u64, start_record u64, record_count u32)
//! records:   (series_id u64, series_len × f32)*   — clustered per node
//! ```
//!
//! All integers and floats are little-endian. Readers can fetch a single
//! trie-node cluster without decoding the rest of the partition, which is
//! what makes CLIMBER's sub-partition query access pattern measurable.

use bytes::{BufMut, Bytes, BytesMut};

/// Identifier of a trie node within a group's trie (assigned by the index
/// builder; unique within an index).
pub type TrieNodeId = u64;

// ---------------------------------------------------------------------------
// Hand-rolled binary codec
// ---------------------------------------------------------------------------
//
// The persistent index format (manifest, skeleton, trie, pivot table) is
// read and written through this tiny layer rather than a serde stack: the
// build environment has no registry access, and a fixed little-endian
// layout keeps the on-disk format inspectable and versionable by hand.

/// Types that serialise themselves onto a byte vector (little-endian).
pub trait Encode {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: encodes into a fresh vector.
    fn encode_vec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// Types that deserialise themselves from a [`ByteReader`].
pub trait Decode: Sized {
    /// Reads one value, advancing the reader. Errors name what truncated
    /// or mismatched; they never panic on malformed input.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, String>;

    /// Convenience: decodes a value that must span `bytes` exactly.
    fn decode_vec(bytes: &[u8]) -> Result<Self, String> {
        let mut r = ByteReader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

/// Cursor over a byte slice with bounds-checked little-endian reads.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Current read position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let s = self
            .pos
            .checked_add(n)
            .and_then(|end| self.bytes.get(self.pos..end))
            .ok_or_else(|| format!("truncated: wanted {n} bytes, {} left", self.remaining()))?;
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `f32`.
    pub fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` length prefix followed by that many raw bytes.
    pub fn blob(&mut self) -> Result<&'a [u8], String> {
        let n = self.u64()? as usize;
        self.take(n)
    }

    /// Fails unless every byte has been consumed (trailing bytes are a
    /// corruption signal, never silently ignored).
    pub fn expect_end(&self) -> Result<(), String> {
        if self.remaining() != 0 {
            return Err(format!("{} trailing bytes", self.remaining()));
        }
        Ok(())
    }
}

macro_rules! impl_codec_primitive {
    ($ty:ty, $read:ident) => {
        impl Encode for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut ByteReader<'_>) -> Result<Self, String> {
                r.$read()
            }
        }
    };
}

impl_codec_primitive!(u16, u16);
impl_codec_primitive!(u32, u32);
impl_codec_primitive!(u64, u64);
impl_codec_primitive!(f32, f32);
impl_codec_primitive!(f64, f64);

impl Encode for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
}

impl Decode for u8 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, String> {
        r.u8()
    }
}

impl Encode for [u8] {
    /// Length-prefixed (`u64`) raw bytes.
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self);
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_slice().encode(out);
    }
}

impl Decode for Vec<u8> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, String> {
        Ok(r.blob()?.to_vec())
    }
}

const MAGIC: [u8; 4] = *b"CLBP";
const VERSION: u32 = 1;
const HEADER_FIXED: usize = 4 + 4 + 8 + 4 + 4;
const DIR_ENTRY: usize = 8 + 8 + 4;

/// Builder for one partition: append whole trie-node clusters, then
/// [`PartitionWriter::finish`].
#[derive(Debug)]
pub struct PartitionWriter {
    group_id: u64,
    series_len: usize,
    directory: Vec<(TrieNodeId, u64, u32)>,
    records: BytesMut,
    record_count: u64,
}

impl PartitionWriter {
    /// Starts a partition for `group_id` holding series of length
    /// `series_len`.
    pub fn new(group_id: u64, series_len: usize) -> Self {
        assert!(series_len > 0, "series length must be positive");
        Self {
            group_id,
            series_len,
            directory: Vec::new(),
            records: BytesMut::new(),
            record_count: 0,
        }
    }

    /// Appends a cluster of records belonging to trie node `node_id`.
    ///
    /// # Panics
    /// If the node was already appended, or a record has the wrong length.
    pub fn push_cluster<'a, I>(&mut self, node_id: TrieNodeId, records: I)
    where
        I: IntoIterator<Item = (u64, &'a [f32])>,
    {
        assert!(
            !self.directory.iter().any(|&(n, _, _)| n == node_id),
            "trie node {node_id} appended twice"
        );
        let start = self.record_count;
        let mut count = 0u32;
        for (id, values) in records {
            assert_eq!(
                values.len(),
                self.series_len,
                "record {id} has length {}, partition expects {}",
                values.len(),
                self.series_len
            );
            self.records.put_u64_le(id);
            for &v in values {
                self.records.put_f32_le(v);
            }
            count += 1;
        }
        self.record_count += count as u64;
        self.directory.push((node_id, start, count));
    }

    /// Number of records appended so far.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Serialises the partition.
    pub fn finish(self) -> Bytes {
        let mut out = BytesMut::with_capacity(
            HEADER_FIXED + self.directory.len() * DIR_ENTRY + self.records.len(),
        );
        out.put_slice(&MAGIC);
        out.put_u32_le(VERSION);
        out.put_u64_le(self.group_id);
        out.put_u32_le(self.series_len as u32);
        out.put_u32_le(self.directory.len() as u32);
        for &(node, start, count) in &self.directory {
            out.put_u64_le(node);
            out.put_u64_le(start);
            out.put_u32_le(count);
        }
        out.extend_from_slice(&self.records);
        out.freeze()
    }
}

/// A reusable flat buffer of decoded records: ids side by side with a
/// single `f32` arena, `series_len` values per record.
///
/// The per-query refinement path decodes each record into a scratch slice
/// as it visits it ([`PartitionReader::for_each_in_cluster`]); the batched
/// partition-major path instead decodes a cluster **once** into a
/// `ClusterBuf` and scores it against every query that selected it.
/// Reusing the buffer across clusters and partitions means the steady
/// state performs no per-call allocation at all.
///
/// ```
/// use climber_dfs::format::{ClusterBuf, PartitionReader, PartitionWriter};
///
/// let mut w = PartitionWriter::new(0, 2);
/// w.push_cluster(7, vec![(1u64, &[1.0f32, 2.0][..]), (2, &[3.0, 4.0])]);
/// let reader = PartitionReader::open(w.finish()).unwrap();
///
/// let mut buf = ClusterBuf::new();
/// assert_eq!(reader.read_cluster_into(7, &mut buf), 2);
/// assert_eq!(buf.len(), 2);
/// assert_eq!(buf.get(1), (2, &[3.0f32, 4.0][..]));
/// buf.clear(); // keeps capacity for the next cluster
/// assert!(buf.is_empty());
/// ```
#[derive(Debug, Default, Clone)]
pub struct ClusterBuf {
    series_len: usize,
    ids: Vec<u64>,
    values: Vec<f32>,
}

impl ClusterBuf {
    /// An empty buffer; its series length is set by the first decode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of decoded records held.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no records are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Length of every held series (0 while empty and untouched).
    #[inline]
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Drops all records but keeps the allocations for reuse.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.values.clear();
    }

    /// The `i`-th decoded record as `(series id, values)`.
    ///
    /// # Panics
    /// If `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> (u64, &[f32]) {
        let s = i * self.series_len;
        (self.ids[i], &self.values[s..s + self.series_len])
    }

    /// Iterates the decoded records in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[f32])> {
        self.ids
            .iter()
            .copied()
            .zip(self.values.chunks_exact(self.series_len.max(1)))
    }

    /// Appends one already-decoded record — the merge primitive the query
    /// layer uses to add delta-segment records to a sealed cluster's
    /// candidate stream.
    ///
    /// # Panics
    /// If the buffer is non-empty and `values` has a different length.
    #[inline]
    pub fn push(&mut self, id: u64, values: &[f32]) {
        self.adopt_len(values.len());
        self.ids.push(id);
        self.values.extend_from_slice(values);
    }

    /// Prepares for appends of `series_len`-point records: adopts the
    /// length when empty, asserts it matches otherwise.
    fn adopt_len(&mut self, series_len: usize) {
        if self.ids.is_empty() {
            self.series_len = series_len;
        } else {
            assert_eq!(
                self.series_len, series_len,
                "ClusterBuf holds {}-point series, cannot append {}-point ones",
                self.series_len, series_len
            );
        }
    }
}

/// Zero-copy reader over an encoded partition.
#[derive(Debug, Clone)]
pub struct PartitionReader {
    bytes: Bytes,
    group_id: u64,
    series_len: usize,
    directory: Vec<(TrieNodeId, u64, u32)>,
    records_at: usize,
}

impl PartitionReader {
    /// Parses the header of an encoded partition.
    pub fn open(bytes: Bytes) -> Result<Self, String> {
        if bytes.len() < HEADER_FIXED {
            return Err("partition shorter than fixed header".into());
        }
        if bytes[0..4] != MAGIC {
            return Err(format!("bad partition magic {:?}", &bytes[0..4]));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(format!("unsupported partition version {version}"));
        }
        let group_id = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let series_len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
        let n_clusters = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as usize;
        if series_len == 0 {
            return Err("partition with zero series length".into());
        }
        let dir_end = HEADER_FIXED + n_clusters * DIR_ENTRY;
        if bytes.len() < dir_end {
            return Err("partition truncated inside directory".into());
        }
        let mut directory = Vec::with_capacity(n_clusters);
        let mut total = 0u64;
        for i in 0..n_clusters {
            let off = HEADER_FIXED + i * DIR_ENTRY;
            let node = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
            let start = u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap());
            let count = u32::from_le_bytes(bytes[off + 16..off + 20].try_into().unwrap());
            if start != total {
                return Err(format!(
                    "directory entry {i}: start {start} != running total {total}"
                ));
            }
            total += count as u64;
            directory.push((node, start, count));
        }
        let record_size = 8 + series_len * 4;
        let want = dir_end + (total as usize) * record_size;
        if bytes.len() != want {
            return Err(format!(
                "partition length {} != expected {want}",
                bytes.len()
            ));
        }
        Ok(Self {
            bytes,
            group_id,
            series_len,
            directory,
            records_at: dir_end,
        })
    }

    /// The owning group id.
    pub fn group_id(&self) -> u64 {
        self.group_id
    }

    /// The raw encoded partition, exactly as stored. Used by the
    /// persistence layer to copy and checksum partitions without
    /// re-encoding records.
    pub fn raw_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Length of every stored series.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Total records in the partition.
    pub fn record_count(&self) -> u64 {
        self.directory.iter().map(|&(_, _, c)| c as u64).sum()
    }

    /// Size of the header + directory in bytes (the cost of opening the
    /// partition without reading records).
    pub fn header_bytes(&self) -> usize {
        HEADER_FIXED + self.directory.len() * DIR_ENTRY
    }

    /// Trie-node ids present, in storage order.
    pub fn cluster_ids(&self) -> Vec<TrieNodeId> {
        self.directory.iter().map(|&(n, _, _)| n).collect()
    }

    /// Record count of a specific cluster, or `None` if absent.
    pub fn cluster_len(&self, node_id: TrieNodeId) -> Option<u32> {
        self.directory
            .iter()
            .find(|&&(n, _, _)| n == node_id)
            .map(|&(_, _, c)| c)
    }

    /// Byte size of a specific cluster's records.
    pub fn cluster_bytes(&self, node_id: TrieNodeId) -> Option<usize> {
        self.cluster_len(node_id)
            .map(|c| c as usize * (8 + self.series_len * 4))
    }

    /// Visits every record of cluster `node_id` with a reusable buffer.
    /// Returns the number of records visited (0 when the node is absent).
    pub fn for_each_in_cluster<F>(&self, node_id: TrieNodeId, mut f: F) -> u64
    where
        F: FnMut(u64, &[f32]),
    {
        let Some(&(_, start, count)) = self.directory.iter().find(|&&(n, _, _)| n == node_id)
        else {
            return 0;
        };
        self.visit_range(start, count, &mut f);
        count as u64
    }

    /// Decodes every record of cluster `node_id` into `buf`, **appending**
    /// to whatever the buffer already holds and reusing its allocations.
    /// Returns the number of records appended (0 when the node is absent).
    ///
    /// This is the partition-major counterpart of
    /// [`for_each_in_cluster`](Self::for_each_in_cluster): decode once,
    /// then let many queries scan the decoded floats.
    ///
    /// # Panics
    /// If `buf` is non-empty and holds series of a different length.
    pub fn read_cluster_into(&self, node_id: TrieNodeId, buf: &mut ClusterBuf) -> u64 {
        let Some(&(_, _, count)) = self.directory.iter().find(|&&(n, _, _)| n == node_id) else {
            return 0;
        };
        buf.ids.reserve(count as usize);
        buf.values.reserve(count as usize * self.series_len);
        self.read_cluster_into_if(node_id, buf, |_| true)
    }

    /// Like [`read_cluster_into`](Self::read_cluster_into), but appends
    /// only records whose id passes `keep` — the tombstone-filtering
    /// decode of the update-aware query paths. Returns the number of
    /// records *visited* (the physical cluster size), not the number
    /// appended; the caller reads `buf.len()` for the logical count.
    pub fn read_cluster_into_if(
        &self,
        node_id: TrieNodeId,
        buf: &mut ClusterBuf,
        mut keep: impl FnMut(u64) -> bool,
    ) -> u64 {
        let Some(&(_, start, count)) = self.directory.iter().find(|&&(n, _, _)| n == node_id)
        else {
            return 0;
        };
        buf.adopt_len(self.series_len);
        let record_size = 8 + self.series_len * 4;
        for r in 0..count as u64 {
            let off = self.records_at + ((start + r) as usize) * record_size;
            let id = u64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap());
            if !keep(id) {
                continue;
            }
            buf.ids.push(id);
            let vals = &self.bytes[off + 8..off + record_size];
            buf.values.extend(
                vals.chunks_exact(4)
                    .map(|chunk| f32::from_le_bytes(chunk.try_into().unwrap())),
            );
        }
        count as u64
    }

    /// Random-access view over the records of cluster `node_id`, or `None`
    /// when the node is absent. One directory lookup up front, then O(1)
    /// per-record access — the promotion primitive of the quantized
    /// prefilter, which decodes exact `f32` values only for the records
    /// that survive the quantized lower bound.
    pub fn cluster_records(&self, node_id: TrieNodeId) -> Option<ClusterRecords<'_>> {
        let &(_, start, count) = self.directory.iter().find(|&&(n, _, _)| n == node_id)?;
        let record_size = 8 + self.series_len * 4;
        let off = self.records_at + (start as usize) * record_size;
        let len = count as usize * record_size;
        Some(ClusterRecords {
            bytes: &self.bytes[off..off + len],
            series_len: self.series_len,
            count: count as usize,
        })
    }

    /// The raw encoded partition as a refcounted handle — a clone of the
    /// underlying [`Bytes`], no copy. The cache layer uses this to keep a
    /// partition image resident after the reader is dropped.
    pub fn raw_bytes_owned(&self) -> Bytes {
        self.bytes.clone()
    }

    /// An owned, refcounted slice of cluster `node_id`'s encoded records
    /// plus its record count — the zero-copy backing of
    /// [`ClusterView`](crate::page::ClusterView).
    pub(crate) fn cluster_bytes_owned(&self, node_id: TrieNodeId) -> Option<(Bytes, u32)> {
        let &(_, start, count) = self.directory.iter().find(|&&(n, _, _)| n == node_id)?;
        let record_size = 8 + self.series_len * 4;
        let off = self.records_at + (start as usize) * record_size;
        let len = count as usize * record_size;
        Some((self.bytes.slice(off..off + len), count))
    }

    /// True when any stored record's id satisfies `pred`. Reads only the
    /// 8 id bytes of each record — no value decoding — and returns at the
    /// first hit, so scanning a partition for (say) tombstoned ids costs
    /// far less than a full decode.
    pub fn any_id(&self, mut pred: impl FnMut(u64) -> bool) -> bool {
        let record_size = 8 + self.series_len * 4;
        for r in 0..self.record_count() {
            let off = self.records_at + (r as usize) * record_size;
            let id = u64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap());
            if pred(id) {
                return true;
            }
        }
        false
    }

    /// Visits every record in the whole partition.
    pub fn for_each<F>(&self, mut f: F) -> u64
    where
        F: FnMut(u64, &[f32]),
    {
        let total = self.record_count();
        self.visit_range(0, total as u32, &mut f);
        total
    }

    fn visit_range<F>(&self, start: u64, count: u32, f: &mut F)
    where
        F: FnMut(u64, &[f32]),
    {
        let record_size = 8 + self.series_len * 4;
        let mut buf = vec![0.0f32; self.series_len];
        for r in 0..count as u64 {
            let off = self.records_at + ((start + r) as usize) * record_size;
            let id = u64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap());
            let vals = &self.bytes[off + 8..off + record_size];
            for (i, chunk) in vals.chunks_exact(4).enumerate() {
                buf[i] = f32::from_le_bytes(chunk.try_into().unwrap());
            }
            f(id, &buf);
        }
    }
}

/// Random-access view over one sealed cluster's encoded records, returned
/// by [`PartitionReader::cluster_records`]. Ids can be inspected without
/// decoding values; values decode on demand, per record.
#[derive(Debug, Clone, Copy)]
pub struct ClusterRecords<'a> {
    bytes: &'a [u8],
    series_len: usize,
    count: usize,
}

impl ClusterRecords<'_> {
    /// Number of records in the cluster.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the cluster holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Length of every stored series.
    #[inline]
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Series id of record `i` — an 8-byte read, no value decoding.
    ///
    /// # Panics
    /// If `i >= len()`.
    #[inline]
    pub fn id(&self, i: usize) -> u64 {
        let off = i * (8 + self.series_len * 4);
        u64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }

    /// Decodes the values of record `i` into `out` (cleared first).
    ///
    /// # Panics
    /// If `i >= len()`.
    pub fn values_into(&self, i: usize, out: &mut Vec<f32>) {
        let record_size = 8 + self.series_len * 4;
        let off = i * record_size;
        out.clear();
        out.extend(
            self.bytes[off + 8..off + record_size]
                .chunks_exact(4)
                .map(|chunk| f32::from_le_bytes(chunk.try_into().unwrap())),
        );
    }

    /// Appends record `i` (id and values) to `buf`.
    ///
    /// # Panics
    /// If `i >= len()`, or `buf` is non-empty with a different series
    /// length.
    pub fn push_into(&self, i: usize, buf: &mut ClusterBuf) {
        let record_size = 8 + self.series_len * 4;
        let off = i * record_size;
        buf.adopt_len(self.series_len);
        buf.ids.push(self.id(i));
        buf.values.extend(
            self.bytes[off + 8..off + record_size]
                .chunks_exact(4)
                .map(|chunk| f32::from_le_bytes(chunk.try_into().unwrap())),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_partition() -> Bytes {
        let mut w = PartitionWriter::new(3, 4);
        w.push_cluster(
            100,
            vec![
                (1u64, &[1.0f32, 2.0, 3.0, 4.0][..]),
                (2, &[5.0, 6.0, 7.0, 8.0]),
            ],
        );
        w.push_cluster(200, vec![(3u64, &[9.0f32, 10.0, 11.0, 12.0][..])]);
        w.finish()
    }

    #[test]
    fn roundtrip_header() {
        let r = PartitionReader::open(sample_partition()).unwrap();
        assert_eq!(r.group_id(), 3);
        assert_eq!(r.series_len(), 4);
        assert_eq!(r.record_count(), 3);
        assert_eq!(r.cluster_ids(), vec![100, 200]);
        assert_eq!(r.cluster_len(100), Some(2));
        assert_eq!(r.cluster_len(200), Some(1));
        assert_eq!(r.cluster_len(999), None);
    }

    #[test]
    fn cluster_reads_are_localized() {
        let r = PartitionReader::open(sample_partition()).unwrap();
        let mut got = Vec::new();
        let n = r.for_each_in_cluster(200, |id, vals| got.push((id, vals.to_vec())));
        assert_eq!(n, 1);
        assert_eq!(got, vec![(3, vec![9.0, 10.0, 11.0, 12.0])]);
    }

    #[test]
    fn absent_cluster_visits_nothing() {
        let r = PartitionReader::open(sample_partition()).unwrap();
        let n = r.for_each_in_cluster(12345, |_, _| panic!("must not be called"));
        assert_eq!(n, 0);
    }

    #[test]
    fn for_each_visits_all_in_order() {
        let r = PartitionReader::open(sample_partition()).unwrap();
        let mut ids = Vec::new();
        let n = r.for_each(|id, _| ids.push(id));
        assert_eq!(n, 3);
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn any_id_scans_ids_with_early_exit() {
        let r = PartitionReader::open(sample_partition()).unwrap();
        assert!(r.any_id(|id| id == 3));
        assert!(!r.any_id(|id| id == 99));
        let mut visited = 0;
        assert!(r.any_id(|id| {
            visited += 1;
            id == 1
        }));
        assert_eq!(visited, 1, "stops at the first hit");
    }

    #[test]
    fn empty_cluster_allowed() {
        let mut w = PartitionWriter::new(0, 2);
        w.push_cluster(7, Vec::<(u64, &[f32])>::new());
        let r = PartitionReader::open(w.finish()).unwrap();
        assert_eq!(r.cluster_len(7), Some(0));
        assert_eq!(r.record_count(), 0);
    }

    #[test]
    #[should_panic(expected = "appended twice")]
    fn duplicate_cluster_panics() {
        let mut w = PartitionWriter::new(0, 2);
        w.push_cluster(7, Vec::<(u64, &[f32])>::new());
        w.push_cluster(7, Vec::<(u64, &[f32])>::new());
    }

    #[test]
    #[should_panic(expected = "has length")]
    fn wrong_record_length_panics() {
        let mut w = PartitionWriter::new(0, 3);
        w.push_cluster(1, vec![(0u64, &[1.0f32][..])]);
    }

    #[test]
    fn corrupted_magic_rejected() {
        let mut b = sample_partition().to_vec();
        b[0] = b'X';
        assert!(PartitionReader::open(Bytes::from(b)).is_err());
    }

    #[test]
    fn truncated_partition_rejected() {
        let b = sample_partition();
        for cut in [3usize, 10, 30, b.len() - 1] {
            let t = b.slice(0..cut);
            assert!(PartitionReader::open(t).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = sample_partition().to_vec();
        b.push(0);
        assert!(PartitionReader::open(Bytes::from(b)).is_err());
    }

    #[test]
    fn header_bytes_counts_directory() {
        let r = PartitionReader::open(sample_partition()).unwrap();
        assert_eq!(r.header_bytes(), 24 + 2 * 20);
    }

    #[test]
    fn read_cluster_into_matches_for_each() {
        let r = PartitionReader::open(sample_partition()).unwrap();
        for node in [100u64, 200, 999] {
            let mut via_visit = Vec::new();
            let n1 = r.for_each_in_cluster(node, |id, vals| via_visit.push((id, vals.to_vec())));
            let mut buf = ClusterBuf::new();
            let n2 = r.read_cluster_into(node, &mut buf);
            assert_eq!(n1, n2, "node {node}");
            let via_buf: Vec<(u64, Vec<f32>)> =
                buf.iter().map(|(id, v)| (id, v.to_vec())).collect();
            assert_eq!(via_visit, via_buf, "node {node}");
        }
    }

    #[test]
    fn cluster_buf_appends_and_reuses() {
        let r = PartitionReader::open(sample_partition()).unwrap();
        let mut buf = ClusterBuf::new();
        r.read_cluster_into(100, &mut buf);
        r.read_cluster_into(200, &mut buf); // appends
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.series_len(), 4);
        assert_eq!(buf.get(2), (3, &[9.0f32, 10.0, 11.0, 12.0][..]));
        buf.clear();
        assert!(buf.is_empty());
        r.read_cluster_into(200, &mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.get(0).0, 3);
    }

    #[test]
    fn read_cluster_into_if_filters_and_reports_physical_count() {
        let r = PartitionReader::open(sample_partition()).unwrap();
        let mut buf = ClusterBuf::new();
        let visited = r.read_cluster_into_if(100, &mut buf, |id| id != 1);
        assert_eq!(visited, 2, "physical cluster size");
        assert_eq!(buf.len(), 1, "one record filtered out");
        assert_eq!(buf.get(0), (2, &[5.0f32, 6.0, 7.0, 8.0][..]));
        // keep-all matches the unfiltered decode
        let mut a = ClusterBuf::new();
        let mut b = ClusterBuf::new();
        r.read_cluster_into(100, &mut a);
        r.read_cluster_into_if(100, &mut b, |_| true);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.get(0), b.get(0));
        // absent cluster: nothing visited
        assert_eq!(r.read_cluster_into_if(999, &mut buf, |_| true), 0);
    }

    #[test]
    fn cluster_buf_push_merges_decoded_records() {
        let r = PartitionReader::open(sample_partition()).unwrap();
        let mut buf = ClusterBuf::new();
        r.read_cluster_into(200, &mut buf);
        buf.push(77, &[0.5, 0.5, 0.5, 0.5]);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.get(1), (77, &[0.5f32, 0.5, 0.5, 0.5][..]));
        // a fresh buffer adopts the pushed length
        let mut fresh = ClusterBuf::new();
        fresh.push(1, &[9.0, 9.0]);
        assert_eq!(fresh.series_len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot append")]
    fn cluster_buf_push_rejects_mixed_lengths() {
        let mut buf = ClusterBuf::new();
        buf.push(1, &[1.0, 2.0]);
        buf.push(2, &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "cannot append")]
    fn cluster_buf_rejects_mixed_lengths() {
        let r4 = PartitionReader::open(sample_partition()).unwrap();
        let mut w = PartitionWriter::new(0, 2);
        w.push_cluster(1, vec![(9u64, &[0.0f32, 0.0][..])]);
        let r2 = PartitionReader::open(w.finish()).unwrap();
        let mut buf = ClusterBuf::new();
        r4.read_cluster_into(100, &mut buf);
        r2.read_cluster_into(1, &mut buf);
    }

    #[test]
    fn cluster_records_random_access_matches_sequential_decode() {
        let r = PartitionReader::open(sample_partition()).unwrap();
        for node in [100u64, 200] {
            let mut buf = ClusterBuf::new();
            r.read_cluster_into(node, &mut buf);
            let recs = r.cluster_records(node).unwrap();
            assert_eq!(recs.len(), buf.len());
            assert_eq!(recs.series_len(), buf.series_len());
            let mut scratch = Vec::new();
            for i in 0..recs.len() {
                let (id, values) = buf.get(i);
                assert_eq!(recs.id(i), id);
                recs.values_into(i, &mut scratch);
                assert_eq!(scratch.as_slice(), values);
            }
        }
        assert!(r.cluster_records(999).is_none());
    }

    #[test]
    fn cluster_records_push_into_appends_records() {
        let r = PartitionReader::open(sample_partition()).unwrap();
        let recs = r.cluster_records(100).unwrap();
        let mut buf = ClusterBuf::new();
        // Promote records out of order, as a survivor scan would.
        recs.push_into(1, &mut buf);
        recs.push_into(0, &mut buf);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.get(0), (2, &[5.0f32, 6.0, 7.0, 8.0][..]));
        assert_eq!(buf.get(1), (1, &[1.0f32, 2.0, 3.0, 4.0][..]));
    }

    #[test]
    fn cluster_buf_reuse_across_quantized_and_f32_decodes() {
        // The quantized prefilter promotes survivors into the same
        // ClusterBuf that full-f32 decodes use; a stale-buffer bug here
        // would silently corrupt scores. Interleave the two access styles
        // through one buffer and check every state transition.
        let r = PartitionReader::open(sample_partition()).unwrap();
        let mut buf = ClusterBuf::new();

        // Full f32 decode of a large cluster.
        r.read_cluster_into(100, &mut buf);
        assert_eq!(buf.len(), 2);

        // Clear, then survivor-promote a subset of the same cluster — the
        // buffer must hold exactly the promoted record, not leftovers.
        buf.clear();
        let recs = r.cluster_records(100).unwrap();
        recs.push_into(1, &mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.get(0), (2, &[5.0f32, 6.0, 7.0, 8.0][..]));

        // Clear, then decode a *different, smaller* cluster; stale values
        // from the larger decode must not bleed in.
        buf.clear();
        r.read_cluster_into(200, &mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.get(0), (3, &[9.0f32, 10.0, 11.0, 12.0][..]));

        // Promotion appends on top of a sealed decode (the delta-merge
        // shape): order and values stay exact.
        recs.push_into(0, &mut buf);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.get(1), (1, &[1.0f32, 2.0, 3.0, 4.0][..]));

        // values_into through a reused scratch vec always clears first.
        let mut scratch = vec![0.0f32; 99];
        recs.values_into(0, &mut scratch);
        assert_eq!(scratch, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn cluster_bytes_accounts_record_size() {
        let r = PartitionReader::open(sample_partition()).unwrap();
        // record = 8 id bytes + 4 × 4 value bytes = 24
        assert_eq!(r.cluster_bytes(100), Some(48));
        assert_eq!(r.cluster_bytes(200), Some(24));
    }

    #[test]
    fn raw_bytes_are_the_stored_encoding() {
        let encoded = sample_partition();
        let r = PartitionReader::open(encoded.clone()).unwrap();
        assert_eq!(r.raw_bytes(), &encoded[..]);
    }

    #[test]
    fn codec_primitives_roundtrip() {
        let mut out = Vec::new();
        7u8.encode(&mut out);
        513u16.encode(&mut out);
        0xDEAD_BEEFu32.encode(&mut out);
        u64::MAX.encode(&mut out);
        1.5f32.encode(&mut out);
        (-2.25f64).encode(&mut out);
        vec![9u8, 8, 7].encode(&mut out);

        let mut r = ByteReader::new(&out);
        assert_eq!(u8::decode(&mut r).unwrap(), 7);
        assert_eq!(u16::decode(&mut r).unwrap(), 513);
        assert_eq!(u32::decode(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(u64::decode(&mut r).unwrap(), u64::MAX);
        assert_eq!(f32::decode(&mut r).unwrap(), 1.5);
        assert_eq!(f64::decode(&mut r).unwrap(), -2.25);
        assert_eq!(Vec::<u8>::decode(&mut r).unwrap(), vec![9, 8, 7]);
        r.expect_end().unwrap();
    }

    #[test]
    fn codec_rejects_truncation_and_trailers() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(r.u32().is_err(), "short read must fail");
        assert_eq!(r.pos(), 0, "failed read does not advance");

        let bytes = 42u32.encode_vec();
        assert!(u32::decode_vec(&bytes).is_ok());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(u32::decode_vec(&trailing).is_err(), "trailing byte");
        assert!(u32::decode_vec(&bytes[..3]).is_err(), "truncated");
    }

    #[test]
    fn codec_blob_is_length_prefixed() {
        let blob: Vec<u8> = (0..9).collect();
        let enc = blob.encode_vec();
        assert_eq!(enc.len(), 8 + 9);
        let mut r = ByteReader::new(&enc);
        assert_eq!(r.blob().unwrap(), &blob[..]);
        // a length prefix pointing past the end must fail, not panic
        let mut bad = enc.clone();
        bad[0] = 200;
        assert!(ByteReader::new(&bad).blob().is_err());
    }
}
