//! Mutable segments: the delta segment and the tombstone set.
//!
//! CLIMBER's sealed partitions are immutable — the builder writes them
//! once and queries only ever read them. Live updates therefore live in
//! two side structures that the query layer merges into the sealed
//! candidate stream:
//!
//! * the [`DeltaSegment`] — an in-memory segment of appended records,
//!   clustered by the *same* `(partition, trie node)` key the frozen
//!   skeleton would route them to. An append is O(record): one routing
//!   pass plus a push into the right delta cluster. Queries read the
//!   delta cluster of every `(partition, node)` they planned, so an
//!   appended record is findable through exactly the plans that would
//!   find it after a rebuild;
//! * the [`TombstoneSet`] — the ids of deleted records. Deletes are
//!   logical: the record stays in its sealed partition (or delta
//!   cluster) until a flush/compaction folds the segments, and every
//!   query path filters tombstoned ids *before* they reach the top-k
//!   heap.
//!
//! Both structures are concurrency-safe behind [`parking_lot`] locks:
//! appends/deletes take short write sections, query scans take per-cluster
//! read sections, and cheap atomic counters keep the no-update fast path
//! lock-free.
//!
//! The [`Journal`] is their durable form: one little-endian blob holding
//! the segment generation, the tombstone ids, and every delta cluster,
//! referenced (size + checksum) by the index manifest so a persisted
//! index can be reopened *writable* with its pending updates intact.

use crate::format::{ByteReader, ClusterBuf, TrieNodeId};
use crate::fsio::ClimberFs;
use crate::manifest::FileEntry;
use crate::store::PartitionId;
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// File name of the update journal inside an index directory.
pub const JOURNAL_FILE: &str = "journal.cldj";

/// Path of the journal inside an index directory.
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join(JOURNAL_FILE)
}

/// The roll-forward staging sibling of the journal: the seal writes the
/// new journal here *before* the manifest commit, and renames it over
/// [`JOURNAL_FILE`] only afterwards — so a crash mid-seal leaves the
/// committed journal untouched, and a crash after the commit is rolled
/// forward at open from this sibling.
pub fn staged_journal_path(dir: &Path) -> PathBuf {
    dir.join(format!("{JOURNAL_FILE}.new"))
}

/// Serialises and durably stages the mutable segments under the
/// journal's `.new` sibling, returning the size + checksum entry the
/// manifest will commit.
pub fn stage_journal(
    fs: &dyn ClimberFs,
    dir: &Path,
    generation: u64,
    delta: &DeltaSegment,
    tombstones: &TombstoneSet,
) -> io::Result<FileEntry> {
    let bytes = encode_journal(generation, delta, tombstones);
    let entry = FileEntry {
        bytes: bytes.len() as u64,
        checksum: crate::manifest::xxh64(&bytes, 0),
    };
    crate::fsio::write_file_atomic_with(fs, &staged_journal_path(dir), &bytes)?;
    Ok(entry)
}

/// Installs a staged journal over the main file — called after the
/// manifest commit point.
pub fn commit_staged_journal(fs: &dyn ClimberFs, dir: &Path) -> io::Result<()> {
    fs.rename(&staged_journal_path(dir), &journal_path(dir))?;
    fs.fsync_dir(dir)
}

/// Removes the journal and any staged sibling, best-effort — the
/// post-commit cleanup when the newly committed manifest records no
/// pending updates. Stray journal files under a journal-less manifest
/// are ignored at open, so failing here is harmless.
pub fn discard_journal(fs: &dyn ClimberFs, dir: &Path) {
    fs.remove_file(&journal_path(dir)).ok();
    fs.remove_file(&staged_journal_path(dir)).ok();
}

/// Magic prefix of a journal file.
pub const JOURNAL_MAGIC: [u8; 4] = *b"CLDJ";

/// Journal layout version written by this build.
pub const JOURNAL_VERSION: u32 = 1;

/// One delta cluster: appended records routed to a `(partition, node)`
/// pair, ids side by side with a flat value arena (the same layout as
/// [`ClusterBuf`]).
#[derive(Debug, Default, Clone)]
struct DeltaCluster {
    ids: Vec<u64>,
    values: Vec<f32>,
}

#[derive(Debug, Default)]
struct DeltaInner {
    /// Length of every held series (0 until the first append).
    series_len: usize,
    clusters: BTreeMap<(PartitionId, TrieNodeId), DeltaCluster>,
}

/// The mutable in-memory segment absorbing appends.
///
/// Records are clustered under the `(partition, trie node)` key the
/// frozen skeleton routes them to, so the query layer can merge a delta
/// cluster into the candidate stream of the sealed cluster with the same
/// key. The segment is drained by a flush, which folds its clusters into
/// rewritten sealed partitions.
#[derive(Debug, Default)]
pub struct DeltaSegment {
    inner: RwLock<DeltaInner>,
    /// Record count mirror so `is_empty`/`record_count` never lock (the
    /// static-index query fast path checks this per query).
    records: AtomicU64,
}

impl DeltaSegment {
    /// An empty delta segment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of appended records currently held.
    #[inline]
    pub fn record_count(&self) -> u64 {
        self.records.load(Ordering::Acquire)
    }

    /// True when no appends are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.record_count() == 0
    }

    /// Length of the held series (0 while empty).
    pub fn series_len(&self) -> usize {
        self.inner.read().series_len
    }

    /// Appends one routed record in O(record).
    ///
    /// # Panics
    /// If `values` has a different length than records already held.
    pub fn append(&self, partition: PartitionId, node: TrieNodeId, id: u64, values: &[f32]) {
        self.append_many(std::iter::once((partition, node, id, values)));
    }

    /// Appends a whole routed batch under a single write section — the
    /// grouped form [`append`](Self::append) is a special case of.
    ///
    /// # Panics
    /// If any record's length differs from records already held.
    pub fn append_many<'a, I>(&self, records: I)
    where
        I: IntoIterator<Item = (PartitionId, TrieNodeId, u64, &'a [f32])>,
    {
        let mut inner = self.inner.write();
        let mut added = 0u64;
        for (partition, node, id, values) in records {
            assert!(!values.is_empty(), "cannot append an empty series");
            if inner.series_len == 0 {
                inner.series_len = values.len();
            }
            assert_eq!(
                values.len(),
                inner.series_len,
                "appended series length {} != delta series length {}",
                values.len(),
                inner.series_len
            );
            let cluster = inner.clusters.entry((partition, node)).or_default();
            cluster.ids.push(id);
            cluster.values.extend_from_slice(values);
            added += 1;
        }
        self.records.fetch_add(added, Ordering::Release);
    }

    /// Partitions with at least one delta record, ascending.
    pub fn partitions(&self) -> Vec<PartitionId> {
        let inner = self.inner.read();
        let mut out: Vec<PartitionId> = inner.clusters.keys().map(|&(p, _)| p).collect();
        out.dedup();
        out
    }

    /// Trie nodes of `partition` holding delta records, ascending.
    pub fn nodes_for(&self, partition: PartitionId) -> Vec<TrieNodeId> {
        let inner = self.inner.read();
        inner
            .clusters
            .range((partition, 0)..=(partition, TrieNodeId::MAX))
            .map(|(&(_, n), _)| n)
            .collect()
    }

    /// Appends the delta records of `(partition, node)` that pass `keep`
    /// into `buf` (the same merge primitive sealed clusters use). Returns
    /// the number of records appended.
    pub fn read_cluster_into(
        &self,
        partition: PartitionId,
        node: TrieNodeId,
        buf: &mut ClusterBuf,
        mut keep: impl FnMut(u64) -> bool,
    ) -> u64 {
        let inner = self.inner.read();
        let Some(cluster) = inner.clusters.get(&(partition, node)) else {
            return 0;
        };
        let w = inner.series_len;
        let mut appended = 0u64;
        for (i, &id) in cluster.ids.iter().enumerate() {
            if keep(id) {
                buf.push(id, &cluster.values[i * w..(i + 1) * w]);
                appended += 1;
            }
        }
        appended
    }

    /// Visits every held record as `(partition, node, id, values)` in
    /// `(partition, node)` order (journal serialisation and tests).
    pub fn for_each(&self, mut f: impl FnMut(PartitionId, TrieNodeId, u64, &[f32])) {
        let inner = self.inner.read();
        let w = inner.series_len;
        for (&(p, n), cluster) in &inner.clusters {
            for (i, &id) in cluster.ids.iter().enumerate() {
                f(p, n, id, &cluster.values[i * w..(i + 1) * w]);
            }
        }
    }

    /// Drains every cluster out of the segment, leaving it empty — the
    /// first step of a flush. Records appended concurrently after the
    /// drain land in the emptied segment and survive for the next flush.
    /// Returns `(partition, node) → (ids, flat values)` with ids in
    /// append order.
    #[allow(clippy::type_complexity)]
    pub fn drain(&self) -> BTreeMap<(PartitionId, TrieNodeId), (Vec<u64>, Vec<f32>)> {
        let mut inner = self.inner.write();
        let drained = std::mem::take(&mut inner.clusters);
        let out: BTreeMap<_, _> = drained
            .into_iter()
            .map(|(k, c)| (k, (c.ids, c.values)))
            .collect();
        let n: u64 = out.values().map(|(ids, _)| ids.len() as u64).sum();
        self.records.fetch_sub(n, Ordering::Release);
        out
    }

    /// Re-inserts clusters produced by [`drain`](Self::drain) — the
    /// rollback path of a failed flush, so no acknowledged append is ever
    /// dropped on an I/O error.
    #[allow(clippy::type_complexity)]
    pub fn restore(&self, clusters: BTreeMap<(PartitionId, TrieNodeId), (Vec<u64>, Vec<f32>)>) {
        let mut inner = self.inner.write();
        let mut added = 0u64;
        for ((p, n), (ids, values)) in clusters {
            if inner.series_len == 0 && !ids.is_empty() {
                inner.series_len = values.len() / ids.len();
            }
            added += ids.len() as u64;
            let cluster = inner.clusters.entry((p, n)).or_default();
            cluster.ids.extend(ids);
            cluster.values.extend(values);
        }
        self.records.fetch_add(added, Ordering::Release);
    }
}

/// The set of logically deleted series ids.
///
/// A delete is O(log n) into an ordered set; the record's bytes stay in
/// place until a compaction rewrites the partitions that hold them. Query
/// paths filter tombstoned ids out of the candidate stream before any
/// distance is offered to the top-k heap, so a deleted record can never
/// appear in (or displace members of) an answer set.
#[derive(Debug, Default)]
pub struct TombstoneSet {
    set: RwLock<BTreeSet<u64>>,
    /// Size mirror so `is_empty` never locks on the query fast path.
    count: AtomicU64,
}

/// A read section over a [`TombstoneSet`], held for the duration of one
/// cluster scan so per-record membership checks don't re-lock.
pub struct TombstoneView<'a>(std::sync::RwLockReadGuard<'a, BTreeSet<u64>>);

impl TombstoneView<'_> {
    /// True when `id` is deleted.
    #[inline]
    pub fn contains(&self, id: u64) -> bool {
        self.0.contains(&id)
    }
}

impl TombstoneSet {
    /// An empty tombstone set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tombstones `id`; returns false when it was already deleted.
    pub fn delete(&self, id: u64) -> bool {
        let newly = self.set.write().insert(id);
        if newly {
            self.count.fetch_add(1, Ordering::Release);
        }
        newly
    }

    /// True when `id` is deleted.
    pub fn contains(&self, id: u64) -> bool {
        !self.is_empty() && self.set.read().contains(&id)
    }

    /// Number of tombstoned ids.
    #[inline]
    pub fn len(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// True when nothing is deleted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Opens a read section for a cluster scan.
    pub fn read(&self) -> TombstoneView<'_> {
        TombstoneView(self.set.read())
    }

    /// All tombstoned ids, ascending.
    pub fn ids(&self) -> Vec<u64> {
        self.set.read().iter().copied().collect()
    }

    /// Removes `ids` from the set (a compaction purged their records).
    /// Ids not present are ignored.
    pub fn remove_all(&self, ids: &[u64]) {
        let mut set = self.set.write();
        let mut removed = 0u64;
        for id in ids {
            removed += u64::from(set.remove(id));
        }
        drop(set);
        self.count.fetch_sub(removed, Ordering::Release);
    }
}

/// The decoded durable form of the mutable segments: what a writable
/// reopen restores before accepting further updates.
#[derive(Debug, Default)]
pub struct Journal {
    /// Segment generation the journal belongs to; must equal the
    /// manifest's generation or the journal is stale.
    pub generation: u64,
    /// The pending appends.
    pub delta: DeltaSegment,
    /// The pending deletes.
    pub tombstones: TombstoneSet,
}

/// Serialises the mutable segments (little-endian):
///
/// ```text
/// magic "CLDJ" | version u32 | generation u64 | series_len u32
/// tombstones: count u64, then ids u64 ascending
/// clusters:   count u32, then per cluster:
///             partition u32, node u64, records u32,
///             records × (id u64, series_len × f32)
/// ```
///
/// The blob carries no checksum of its own — the manifest references it
/// with a size + xxHash64 entry, exactly like a partition file.
pub fn encode_journal(generation: u64, delta: &DeltaSegment, tombstones: &TombstoneSet) -> Vec<u8> {
    let inner = delta.inner.read();
    let mut out = Vec::new();
    out.extend_from_slice(&JOURNAL_MAGIC);
    out.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&(inner.series_len as u32).to_le_bytes());
    let ids = tombstones.ids();
    out.extend_from_slice(&(ids.len() as u64).to_le_bytes());
    for id in ids {
        out.extend_from_slice(&id.to_le_bytes());
    }
    out.extend_from_slice(&(inner.clusters.len() as u32).to_le_bytes());
    for (&(p, n), cluster) in &inner.clusters {
        out.extend_from_slice(&p.to_le_bytes());
        out.extend_from_slice(&n.to_le_bytes());
        out.extend_from_slice(&(cluster.ids.len() as u32).to_le_bytes());
        for (i, &id) in cluster.ids.iter().enumerate() {
            out.extend_from_slice(&id.to_le_bytes());
            for &v in &cluster.values[i * inner.series_len..(i + 1) * inner.series_len] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    out
}

/// Parses a journal written by [`encode_journal`]. Errors name what is
/// malformed; parsing never panics.
pub fn decode_journal(bytes: &[u8]) -> Result<Journal, String> {
    let mut r = ByteReader::new(bytes);
    let magic = r
        .take(4)
        .map_err(|_| "journal shorter than magic".to_string())?;
    if magic != JOURNAL_MAGIC {
        return Err(format!("bad journal magic {magic:?}"));
    }
    let version = r.u32()?;
    if version != JOURNAL_VERSION {
        return Err(format!("unsupported journal version {version}"));
    }
    let generation = r.u64()?;
    let series_len = r.u32()? as usize;
    let journal = Journal {
        generation,
        ..Journal::default()
    };
    let n_tomb = r.u64()?;
    let mut last: Option<u64> = None;
    for _ in 0..n_tomb {
        let id = r.u64()?;
        if last.is_some_and(|p| p >= id) {
            return Err("tombstone ids not strictly ascending".into());
        }
        last = Some(id);
        journal.tombstones.delete(id);
    }
    let n_clusters = r.u32()?;
    if n_clusters > 0 && series_len == 0 {
        return Err("journal has delta clusters but zero series length".into());
    }
    let mut inner = journal.delta.inner.write();
    inner.series_len = series_len;
    let mut total = 0u64;
    for _ in 0..n_clusters {
        let p = r.u32()?;
        let n = r.u64()?;
        let count = r.u32()? as usize;
        let cluster = inner.clusters.entry((p, n)).or_default();
        if !cluster.ids.is_empty() {
            return Err(format!("duplicate journal cluster ({p}, {n})"));
        }
        for _ in 0..count {
            cluster.ids.push(r.u64()?);
            for _ in 0..series_len {
                cluster.values.push(r.f32()?);
            }
        }
        total += count as u64;
    }
    r.expect_end()
        .map_err(|_| "trailing bytes after journal".to_string())?;
    drop(inner);
    journal.delta.records.store(total, Ordering::Release);
    Ok(journal)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_delta() -> DeltaSegment {
        let d = DeltaSegment::new();
        d.append(3, 10, 100, &[1.0, 2.0]);
        d.append(1, 7, 101, &[3.0, 4.0]);
        d.append(3, 10, 102, &[5.0, 6.0]);
        d.append(3, 11, 103, &[7.0, 8.0]);
        d
    }

    #[test]
    fn delta_routes_into_per_partition_node_clusters() {
        let d = sample_delta();
        assert_eq!(d.record_count(), 4);
        assert_eq!(d.series_len(), 2);
        assert_eq!(d.partitions(), vec![1, 3]);
        assert_eq!(d.nodes_for(3), vec![10, 11]);
        assert_eq!(d.nodes_for(1), vec![7]);
        assert_eq!(d.nodes_for(9), Vec::<TrieNodeId>::new());

        let mut buf = ClusterBuf::new();
        assert_eq!(d.read_cluster_into(3, 10, &mut buf, |_| true), 2);
        assert_eq!(buf.get(0), (100, &[1.0f32, 2.0][..]));
        assert_eq!(buf.get(1), (102, &[5.0f32, 6.0][..]));
    }

    #[test]
    fn delta_read_respects_keep_filter() {
        let d = sample_delta();
        let mut buf = ClusterBuf::new();
        assert_eq!(d.read_cluster_into(3, 10, &mut buf, |id| id != 100), 1);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.get(0).0, 102);
    }

    #[test]
    fn delta_append_many_is_one_grouped_pass() {
        let d = DeltaSegment::new();
        let recs: Vec<(PartitionId, TrieNodeId, u64, Vec<f32>)> = (0..10)
            .map(|i| (i % 3, (i % 2) as u64, 200 + i as u64, vec![i as f32, 0.0]))
            .collect();
        d.append_many(recs.iter().map(|(p, n, id, v)| (*p, *n, *id, v.as_slice())));
        assert_eq!(d.record_count(), 10);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn delta_rejects_mixed_lengths() {
        let d = sample_delta();
        d.append(0, 0, 999, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn delta_drain_then_restore_roundtrips() {
        let d = sample_delta();
        let drained = d.drain();
        assert!(d.is_empty());
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[&(3, 10)].0, vec![100, 102]);
        d.restore(drained);
        assert_eq!(d.record_count(), 4);
        assert_eq!(d.series_len(), 2);
        assert_eq!(d.nodes_for(3), vec![10, 11]);
    }

    #[test]
    fn tombstones_delete_once_and_filter() {
        let t = TombstoneSet::new();
        assert!(t.is_empty());
        assert!(t.delete(5));
        assert!(!t.delete(5), "double delete is idempotent");
        assert!(t.delete(9));
        assert_eq!(t.len(), 2);
        assert!(t.contains(5));
        assert!(!t.contains(6));
        let view = t.read();
        assert!(view.contains(9) && !view.contains(4));
        drop(view);
        assert_eq!(t.ids(), vec![5, 9]);
        t.remove_all(&[5, 77]);
        assert_eq!(t.ids(), vec![9]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn concurrent_appends_and_deletes_hold_up() {
        let d = DeltaSegment::new();
        let t = TombstoneSet::new();
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let (d, t) = (&d, &t);
                s.spawn(move || {
                    for i in 0..200u64 {
                        let id = w * 1_000 + i;
                        d.append((id % 5) as PartitionId, id % 3, id, &[id as f32, 1.0]);
                        if i % 4 == 0 {
                            t.delete(id);
                        }
                    }
                });
            }
        });
        assert_eq!(d.record_count(), 800);
        assert_eq!(t.len(), 200);
        let mut seen = 0u64;
        d.for_each(|_, _, _, vals| {
            assert_eq!(vals.len(), 2);
            seen += 1;
        });
        assert_eq!(seen, 800);
    }

    #[test]
    fn journal_roundtrips() {
        let d = sample_delta();
        let t = TombstoneSet::new();
        t.delete(2);
        t.delete(101);
        let bytes = encode_journal(7, &d, &t);
        let j = decode_journal(&bytes).unwrap();
        assert_eq!(j.generation, 7);
        assert_eq!(j.tombstones.ids(), vec![2, 101]);
        assert_eq!(j.delta.record_count(), 4);
        assert_eq!(j.delta.series_len(), 2);
        let mut a = Vec::new();
        let mut b = Vec::new();
        d.for_each(|p, n, id, v| a.push((p, n, id, v.to_vec())));
        j.delta
            .for_each(|p, n, id, v| b.push((p, n, id, v.to_vec())));
        assert_eq!(a, b);
        // Deterministic: same state → same bytes.
        assert_eq!(bytes, encode_journal(7, &d, &t));
    }

    #[test]
    fn empty_journal_roundtrips() {
        let j = decode_journal(&encode_journal(
            0,
            &DeltaSegment::new(),
            &TombstoneSet::new(),
        ))
        .unwrap();
        assert_eq!(j.generation, 0);
        assert!(j.delta.is_empty());
        assert!(j.tombstones.is_empty());
    }

    #[test]
    fn corrupt_journals_rejected() {
        let bytes = encode_journal(3, &sample_delta(), &TombstoneSet::new());
        for cut in [0, 3, 9, 20, bytes.len() - 1] {
            assert!(decode_journal(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(decode_journal(&bad_magic).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_journal(&trailing).is_err());
        let mut bad_version = bytes;
        bad_version[4] = 99;
        assert!(decode_journal(&bad_version).is_err());
    }
}
