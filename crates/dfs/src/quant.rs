//! 8-bit quantized record cache with an admissible lower bound.
//!
//! Once pruning saturates, scan cost is dominated by streaming full `f32`
//! records through the distance kernels. This module shrinks the
//! memory-resident working set ~4x: each sealed trie-node cluster can be
//! cached as min/max-scaled `u8` codes plus a 256-entry reconstruction
//! table, and queries prefilter against a **quantized lower bound** that
//! never over-tightens. Only records whose lower bound stays within the
//! current k-NN bound are promoted to exact `f32` scoring.
//!
//! ## Scheme
//!
//! Per cluster: `lo` / `hi` are the min/max over every value, `step =
//! (hi − lo) / 255`, and each value is stored as `code = round((v − lo) /
//! step)` clamped to `0..=255`. Reconstruction is `recon(code) = lo +
//! code·step` via a precomputed table, and `err` is the **maximum**
//! reconstruction error `|v − recon(code(v))|` observed while encoding the
//! cluster.
//!
//! ## Admissibility
//!
//! For every reading, `|v − recon| ≤ err`, so by the reverse triangle
//! inequality `|q − v| ≥ |q − recon| − err`. Clamping the right side at
//! zero and summing squares therefore lower-bounds the true squared
//! Euclidean distance term by term. The computed bound is additionally
//! deflated by a factor `1 − 1e-9` so that floating-point rounding in the
//! summation can never push it above the exact kernel's value: skipping a
//! record on `lb > bound` then strictly implies its true distance exceeds
//! `bound`, which is exactly the records the early-abandoning kernel
//! rejects — quantized-prefiltered answers stay bit-identical to full-f32
//! answers.
//!
//! Clusters containing non-finite values are never cached (their
//! arithmetic would poison the bound); queries simply fall back to the
//! exact path for them.

use crate::format::{ClusterBuf, TrieNodeId};
use crate::page::CacheLedger;
use crate::store::PartitionId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Multiplicative deflation applied to the lower bound, covering rounding
/// slack between the bound's summation and the exact kernel's.
const LB_DEFLATE: f64 = 1.0 - 1e-9;

/// One sealed cluster, quantized to 8-bit codes.
#[derive(Debug, Clone)]
pub struct QuantizedCluster {
    series_len: usize,
    ids: Vec<u64>,
    codes: Vec<u8>,
    /// `recon[c] = lo + c·step` — one multiply-add per entry, precomputed.
    recon: Box<[f64; 256]>,
    /// Maximum reconstruction error over the cluster's values.
    err: f64,
}

impl QuantizedCluster {
    /// Quantizes a decoded cluster. Returns `None` when the buffer is
    /// empty or holds any non-finite value (such clusters are not worth
    /// caching and would break the bound's arithmetic).
    pub fn from_buf(buf: &ClusterBuf) -> Option<Self> {
        if buf.is_empty() {
            return None;
        }
        let series_len = buf.series_len();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (_, values) in buf.iter() {
            for &v in values {
                if !v.is_finite() {
                    return None;
                }
                let v = f64::from(v);
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        let step = (hi - lo) / 255.0;
        let mut recon = Box::new([0.0f64; 256]);
        for (c, r) in recon.iter_mut().enumerate() {
            *r = lo + c as f64 * step;
        }
        let mut ids = Vec::with_capacity(buf.len());
        let mut codes = Vec::with_capacity(buf.len() * series_len);
        let mut err = 0.0f64;
        for (id, values) in buf.iter() {
            ids.push(id);
            for &v in values {
                let v = f64::from(v);
                let code = if step > 0.0 {
                    ((v - lo) / step).round().clamp(0.0, 255.0) as usize
                } else {
                    0
                };
                err = err.max((v - recon[code]).abs());
                codes.push(code as u8);
            }
        }
        Some(Self {
            series_len,
            ids,
            codes,
            recon,
            err,
        })
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the cluster holds no records (cannot happen post-
    /// construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Length of every quantized series.
    #[inline]
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Series id of record `i`.
    #[inline]
    pub fn id(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// Maximum reconstruction error of the cluster.
    #[inline]
    pub fn max_err(&self) -> f64 {
        self.err
    }

    /// Approximate heap footprint, for the cache's byte budget.
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.ids.len() * std::mem::size_of::<u64>()
            + self.codes.len()
            + 256 * std::mem::size_of::<f64>()
    }

    /// Admissible quantized lower bound on `sq_ed(query, record i)`.
    ///
    /// # Panics
    /// If `query.len() != series_len()` or `i >= len()`.
    pub fn lb(&self, i: usize, query: &[f32]) -> f64 {
        assert_eq!(query.len(), self.series_len, "query/record length mismatch");
        let codes = &self.codes[i * self.series_len..(i + 1) * self.series_len];
        let mut raw = 0.0f64;
        for (q, &c) in query.iter().zip(codes) {
            let t = (f64::from(*q) - self.recon[c as usize]).abs() - self.err;
            if t > 0.0 {
                raw += t * t;
            }
        }
        raw * LB_DEFLATE
    }

    /// True when the lower bound for record `i` strictly exceeds
    /// `threshold` — i.e. the record provably cannot beat the current
    /// k-NN bound and need not be promoted to exact scoring. Exits early
    /// once the partial sum already exceeds the threshold (sound: the sum
    /// is monotone non-decreasing).
    pub fn lb_exceeds(&self, i: usize, query: &[f32], threshold: f64) -> bool {
        assert_eq!(query.len(), self.series_len, "query/record length mismatch");
        if !threshold.is_finite() {
            return false;
        }
        let codes = &self.codes[i * self.series_len..(i + 1) * self.series_len];
        let mut raw = 0.0f64;
        for (j, (q, &c)) in query.iter().zip(codes).enumerate() {
            let t = (f64::from(*q) - self.recon[c as usize]).abs() - self.err;
            if t > 0.0 {
                raw += t * t;
            }
            if j % 16 == 15 && raw * LB_DEFLATE > threshold {
                return true;
            }
        }
        raw * LB_DEFLATE > threshold
    }
}

/// Process-wide byte budget the cache defaults to (~256 MiB).
const DEFAULT_CAPACITY_BYTES: usize = 256 << 20;

/// A byte-budgeted cache of [`QuantizedCluster`]s, keyed by
/// `(partition, trie node)`.
///
/// The cache only ever holds **sealed** content: the query layer bypasses
/// it entirely whenever delta segments or tombstones are live, and the
/// index clears it after every flush/compaction fold (which rewrites
/// partitions and reassigns ids). Disabled by default — quantized
/// prefiltering trades memory for scan speed and is opt-in via
/// [`QuantCache::set_enabled`]; results are bit-identical either way.
#[derive(Debug)]
pub struct QuantCache {
    enabled: AtomicBool,
    map: RwLock<HashMap<(PartitionId, TrieNodeId), Arc<QuantizedCluster>>>,
    bytes: AtomicUsize,
    capacity: usize,
    /// When the index runs with a block cache, this is that cache's
    /// [`CacheLedger`]: quantized bytes then charge the same unified
    /// budget as cached blocks, so the two never double-account and
    /// `clear()` / disabling releases headroom both caches see.
    ledger: RwLock<Option<Arc<CacheLedger>>>,
}

impl Default for QuantCache {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantCache {
    /// An empty, disabled cache with the default byte budget.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY_BYTES)
    }

    /// An empty, disabled cache admitting at most `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            enabled: AtomicBool::new(false),
            map: RwLock::new(HashMap::new()),
            bytes: AtomicUsize::new(0),
            capacity,
            ledger: RwLock::new(None),
        }
    }

    /// Attaches (or detaches, with `None`) a shared byte-budget ledger.
    /// Bytes already admitted migrate to the new ledger so the unified
    /// accounting stays exact across the swap.
    pub fn set_ledger(&self, ledger: Option<Arc<CacheLedger>>) {
        let mut slot = self.ledger.write();
        let current = self.bytes.load(Ordering::Relaxed);
        if let Some(old) = slot.as_ref() {
            old.release(current);
        }
        if let Some(new) = ledger.as_ref() {
            new.charge(current);
        }
        *slot = ledger;
    }

    /// Whether lookups and inserts are live.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns the cache on or off. Turning it off drops all entries.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
        if !enabled {
            self.clear();
        }
    }

    /// The cached cluster for `(partition, node)`, if present and enabled.
    pub fn get(&self, partition: PartitionId, node: TrieNodeId) -> Option<Arc<QuantizedCluster>> {
        if !self.is_enabled() {
            return None;
        }
        self.map.read().get(&(partition, node)).cloned()
    }

    /// Admits a quantized cluster, unless the cache is disabled or the
    /// byte budget is exhausted (admission policy: first-come, no
    /// eviction — the working set is cleared wholesale on fold).
    pub fn insert(&self, partition: PartitionId, node: TrieNodeId, cluster: QuantizedCluster) {
        if !self.is_enabled() {
            return;
        }
        let cost = cluster.footprint_bytes();
        if self.bytes.load(Ordering::Relaxed) + cost > self.capacity {
            return;
        }
        let ledger = self.ledger.read().clone();
        if let Some(ledger) = &ledger {
            if !ledger.would_fit(cost) {
                return;
            }
        }
        let mut map = self.map.write();
        use std::collections::hash_map::Entry;
        if let Entry::Vacant(e) = map.entry((partition, node)) {
            e.insert(Arc::new(cluster));
            self.bytes.fetch_add(cost, Ordering::Relaxed);
            if let Some(ledger) = &ledger {
                ledger.charge(cost);
            }
        }
    }

    /// Drops every entry (called after flush/compaction folds, which
    /// rewrite partitions).
    pub fn clear(&self) {
        self.map.write().clear();
        let freed = self.bytes.swap(0, Ordering::Relaxed);
        if let Some(ledger) = self.ledger.read().as_ref() {
            ledger.release(freed);
        }
    }

    /// Drops every cached cluster of one partition — called when a
    /// quarantine or readmission changes what that partition's opens
    /// serve without a generation bump, so no stale quantized codes can
    /// outlive the underlying bytes.
    pub fn evict_partition(&self, partition: PartitionId) {
        let mut map = self.map.write();
        let mut freed = 0usize;
        map.retain(|&(p, _), c| {
            if p == partition {
                freed += c.footprint_bytes();
                false
            } else {
                true
            }
        });
        drop(map);
        self.bytes.fetch_sub(freed, Ordering::Relaxed);
        if let Some(ledger) = self.ledger.read().as_ref() {
            ledger.release(freed);
        }
    }

    /// Number of cached clusters.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Bytes currently admitted.
    pub fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use climber_series::sq_ed;

    fn buf_of(records: &[(u64, Vec<f32>)]) -> ClusterBuf {
        let mut buf = ClusterBuf::new();
        for (id, values) in records {
            buf.push(*id, values);
        }
        buf
    }

    #[test]
    fn empty_and_nonfinite_clusters_are_rejected() {
        assert!(QuantizedCluster::from_buf(&ClusterBuf::new()).is_none());
        let buf = buf_of(&[(1, vec![1.0, f32::NAN])]);
        assert!(QuantizedCluster::from_buf(&buf).is_none());
        let buf = buf_of(&[(1, vec![1.0, f32::INFINITY])]);
        assert!(QuantizedCluster::from_buf(&buf).is_none());
    }

    #[test]
    fn constant_cluster_quantizes_exactly() {
        let buf = buf_of(&[(1, vec![2.5; 8]), (2, vec![2.5; 8])]);
        let qc = QuantizedCluster::from_buf(&buf).unwrap();
        assert_eq!(qc.len(), 2);
        assert_eq!(qc.max_err(), 0.0);
        // lb of the exact value is (deflated) zero; of a far query, positive.
        assert_eq!(qc.lb(0, &[2.5f32; 8]), 0.0);
        assert!(qc.lb(0, &[10.0f32; 8]) > 0.0);
    }

    #[test]
    fn lb_is_admissible_on_dense_grid() {
        let records: Vec<(u64, Vec<f32>)> = (0..10)
            .map(|i| {
                (
                    i,
                    (0..16)
                        .map(|j| ((i * 31 + j * 7) % 23) as f32 / 3.0 - 4.0)
                        .collect(),
                )
            })
            .collect();
        let buf = buf_of(&records);
        let qc = QuantizedCluster::from_buf(&buf).unwrap();
        for probe in 0..10u64 {
            let query: Vec<f32> = (0..16)
                .map(|j| ((probe * 13 + j * 5) % 29) as f32 / 2.0 - 7.0)
                .collect();
            for (i, (_, values)) in records.iter().enumerate() {
                let exact = sq_ed(&query, values);
                let lb = qc.lb(i, &query);
                assert!(lb <= exact, "record {i}: lb {lb} > exact {exact}");
                assert!(!qc.lb_exceeds(i, &query, exact));
                assert!(qc.lb_exceeds(i, &query, lb - 1.0) || lb < 1.0);
            }
        }
    }

    #[test]
    fn lb_exceeds_never_fires_on_infinite_threshold() {
        let buf = buf_of(&[(1, vec![0.0; 4])]);
        let qc = QuantizedCluster::from_buf(&buf).unwrap();
        assert!(!qc.lb_exceeds(0, &[100.0; 4], f64::INFINITY));
    }

    #[test]
    fn cache_is_disabled_by_default_and_toggles() {
        let cache = QuantCache::new();
        let buf = buf_of(&[(1, vec![1.0, 2.0])]);
        cache.insert(0, 7, QuantizedCluster::from_buf(&buf).unwrap());
        assert!(cache.get(0, 7).is_none(), "disabled cache stores nothing");
        cache.set_enabled(true);
        cache.insert(0, 7, QuantizedCluster::from_buf(&buf).unwrap());
        assert_eq!(cache.get(0, 7).unwrap().len(), 1);
        assert!(cache.bytes() > 0);
        cache.set_enabled(false);
        assert!(cache.get(0, 7).is_none());
        assert_eq!(cache.len(), 0, "disabling drops entries");
    }

    #[test]
    fn cache_respects_byte_budget() {
        let cache = QuantCache::with_capacity(1);
        cache.set_enabled(true);
        let buf = buf_of(&[(1, vec![1.0, 2.0])]);
        cache.insert(0, 7, QuantizedCluster::from_buf(&buf).unwrap());
        assert!(cache.get(0, 7).is_none(), "over-budget insert rejected");
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn cache_clear_resets_accounting() {
        let cache = QuantCache::new();
        cache.set_enabled(true);
        let buf = buf_of(&[(1, vec![1.0, 2.0]), (2, vec![3.0, 4.0])]);
        cache.insert(3, 9, QuantizedCluster::from_buf(&buf).unwrap());
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
        assert!(cache.is_enabled(), "clear does not disable");
    }

    #[test]
    fn evict_partition_drops_only_that_partition() {
        let cache = QuantCache::new();
        cache.set_enabled(true);
        let buf = buf_of(&[(1, vec![1.0, 2.0])]);
        cache.insert(3, 9, QuantizedCluster::from_buf(&buf).unwrap());
        cache.insert(3, 10, QuantizedCluster::from_buf(&buf).unwrap());
        cache.insert(4, 9, QuantizedCluster::from_buf(&buf).unwrap());
        let one = cache.bytes() / 3;
        cache.evict_partition(3);
        assert!(cache.get(3, 9).is_none());
        assert!(cache.get(3, 10).is_none());
        assert!(cache.get(4, 9).is_some(), "other partitions survive");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), one, "byte accounting follows eviction");
    }

    #[test]
    fn shared_ledger_charges_and_releases_consistently() {
        let ledger = Arc::new(CacheLedger::new(1 << 20));
        let cache = QuantCache::new();
        cache.set_enabled(true);
        let buf = buf_of(&[(1, vec![1.0, 2.0])]);
        cache.insert(0, 1, QuantizedCluster::from_buf(&buf).unwrap());
        let admitted = cache.bytes();
        assert!(admitted > 0);
        // Attaching migrates already-admitted bytes onto the ledger.
        cache.set_ledger(Some(Arc::clone(&ledger)));
        assert_eq!(ledger.used(), admitted);
        cache.insert(0, 2, QuantizedCluster::from_buf(&buf).unwrap());
        assert_eq!(ledger.used(), cache.bytes(), "inserts charge the ledger");
        cache.evict_partition(0);
        assert_eq!(ledger.used(), 0, "eviction releases the ledger");
        // The unified budget gates admission: a full ledger (e.g. the
        // block cache's residency) rejects quantized inserts.
        ledger.charge(ledger.capacity());
        cache.insert(1, 1, QuantizedCluster::from_buf(&buf).unwrap());
        assert_eq!(cache.len(), 0, "no admission past the shared budget");
        ledger.release(ledger.capacity());
        // clear() (the maintain()/set_quant_enabled(false) path) releases
        // both the private counter and the shared ledger.
        cache.insert(1, 1, QuantizedCluster::from_buf(&buf).unwrap());
        assert!(ledger.used() > 0);
        cache.set_enabled(false);
        assert_eq!(cache.bytes(), 0);
        assert_eq!(ledger.used(), 0);
        // Detaching releases the migrated bytes too.
        cache.set_enabled(true);
        cache.insert(1, 1, QuantizedCluster::from_buf(&buf).unwrap());
        cache.set_ledger(None);
        assert_eq!(ledger.used(), 0);
        assert!(cache.bytes() > 0, "entries survive a ledger swap");
    }

    #[test]
    fn duplicate_insert_keeps_first_entry_and_bytes() {
        let cache = QuantCache::new();
        cache.set_enabled(true);
        let buf = buf_of(&[(1, vec![1.0, 2.0])]);
        cache.insert(0, 7, QuantizedCluster::from_buf(&buf).unwrap());
        let before = cache.bytes();
        cache.insert(0, 7, QuantizedCluster::from_buf(&buf).unwrap());
        assert_eq!(cache.bytes(), before);
        assert_eq!(cache.len(), 1);
    }
}
