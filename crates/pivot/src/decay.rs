//! Pivot weights via decay functions (Definition 9).
//!
//! In a rank-sensitive signature the leftmost pivot is the closest to the
//! object and should count the most. The paper proposes the exponential
//! decay `f(i, λ) = λ^(i-1)` and linear decay `f(i, λ) = λ · (m - i + 1)`
//! with `λ = 1/m`; positions `i` are 1-based. The Example-1 walkthrough uses
//! exponential decay with `λ = 1/2` (weights 1, 1/2, 1/4, ...).

/// A decay function assigning weights to 1-based prefix positions
/// (Definition 9). Weights are strictly decreasing in position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecayFunction {
    /// `f(i, λ) = λ^(i-1)` with `λ ∈ (0, 1)`.
    Exponential {
        /// Decay rate `λ`.
        lambda: f64,
    },
    /// `f(i, λ) = λ · (m - i + 1)` with `λ = 1/m` — requires the prefix
    /// length `m` at evaluation time.
    Linear,
}

impl DecayFunction {
    /// The paper's default for examples: exponential decay with `λ = 1/2`.
    pub const DEFAULT: DecayFunction = DecayFunction::Exponential { lambda: 0.5 };

    /// Weight of 1-based position `i` within a prefix of length `m`.
    ///
    /// # Panics
    /// If `i` is outside `1..=m`, or the exponential `λ` is outside (0, 1).
    pub fn weight(&self, i: usize, m: usize) -> f64 {
        assert!(i >= 1 && i <= m, "position {i} outside 1..={m}");
        match *self {
            DecayFunction::Exponential { lambda } => {
                assert!(
                    lambda > 0.0 && lambda < 1.0,
                    "exponential decay rate must be in (0,1), got {lambda}"
                );
                lambda.powi(i as i32 - 1)
            }
            DecayFunction::Linear => {
                let lambda = 1.0 / m as f64;
                lambda * (m - i + 1) as f64
            }
        }
    }

    /// All `m` weights, positions 1..=m.
    pub fn weights(&self, m: usize) -> Vec<f64> {
        (1..=m).map(|i| self.weight(i, m)).collect()
    }

    /// Total weight `TW` of a full prefix (Definition 10). Constant for a
    /// given decay function and `m`, as the paper notes.
    pub fn total_weight(&self, m: usize) -> f64 {
        self.weights(m).iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_half_matches_paper_sequence() {
        // "if λ = 1/2, the exponential decay sequence is [1, 1/2, 1/4, ...]"
        let d = DecayFunction::Exponential { lambda: 0.5 };
        assert_eq!(d.weights(4), vec![1.0, 0.5, 0.25, 0.125]);
    }

    #[test]
    fn linear_matches_paper_sequence() {
        // "the linear decay sequence is [1, (m-1)/m, (m-2)/m, ...]"
        let d = DecayFunction::Linear;
        let w = d.weights(4);
        let want = [1.0, 0.75, 0.5, 0.25];
        for (g, e) in w.iter().zip(want.iter()) {
            assert!((g - e).abs() < 1e-12, "{w:?}");
        }
    }

    #[test]
    fn weights_strictly_decrease() {
        for d in [
            DecayFunction::Exponential { lambda: 0.5 },
            DecayFunction::Exponential { lambda: 0.9 },
            DecayFunction::Linear,
        ] {
            let w = d.weights(10);
            for pair in w.windows(2) {
                assert!(pair[0] > pair[1], "{d:?}: {w:?}");
            }
        }
    }

    #[test]
    fn example1_total_weight() {
        // Example 1: m = 3, exponential λ=1/2 → TW = 1 + 0.5 + 0.25 = 1.75.
        let d = DecayFunction::DEFAULT;
        assert!((d.total_weight(3) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn first_position_has_weight_one() {
        assert_eq!(DecayFunction::DEFAULT.weight(1, 5), 1.0);
        assert_eq!(DecayFunction::Linear.weight(1, 5), 1.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn zero_position_panics() {
        DecayFunction::DEFAULT.weight(0, 3);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn position_past_m_panics() {
        DecayFunction::Linear.weight(4, 3);
    }

    #[test]
    #[should_panic(expected = "decay rate")]
    fn bad_lambda_panics() {
        DecayFunction::Exponential { lambda: 1.5 }.weight(1, 3);
    }
}
