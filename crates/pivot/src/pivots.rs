//! Pivot sets: the reference points that induce the Voronoi fragmentation.
//!
//! §V Step 1: pivots are PAA signatures of randomly selected sample series
//! ("random selection works competitively well compared to any other
//! sophisticated selection method" — citing the PPP literature). Once
//! chosen, the pivots remain fixed for the lifetime of the index.

use climber_repr::paa::paa;
use climber_series::dataset::Dataset;
use climber_series::sampling::reservoir_sample;

/// Identifier of a pivot within a [`PivotSet`] (dense, 0-based).
pub type PivotId = u16;

/// A fixed set of `r` pivots in PAA space (all of dimension `w`).
#[derive(Debug, Clone, PartialEq)]
pub struct PivotSet {
    dims: usize,
    // row-major r × w
    coords: Vec<f64>,
}

impl PivotSet {
    /// Builds a pivot set from explicit PAA-space coordinates.
    ///
    /// # Panics
    /// If pivots have inconsistent dimensionality, the set is empty, or
    /// there are more than `u16::MAX` pivots.
    pub fn from_points(points: Vec<Vec<f64>>) -> Self {
        assert!(!points.is_empty(), "pivot set cannot be empty");
        assert!(
            points.len() <= u16::MAX as usize,
            "at most {} pivots supported",
            u16::MAX
        );
        let dims = points[0].len();
        assert!(dims > 0, "pivot dimensionality must be positive");
        let mut coords = Vec::with_capacity(points.len() * dims);
        for p in &points {
            assert_eq!(p.len(), dims, "inconsistent pivot dimensionality");
            coords.extend_from_slice(p);
        }
        Self { dims, coords }
    }

    /// Selects `r` pivots by computing the `w`-segment PAA of every series
    /// in `sample` and reservoir-sampling `r` of them (§V Step 1).
    ///
    /// # Panics
    /// If the sample holds fewer than `r` series.
    pub fn select_random(sample: &Dataset, w: usize, r: usize, seed: u64) -> Self {
        assert!(
            sample.num_series() >= r,
            "sample of {} series cannot provide {} pivots",
            sample.num_series(),
            r
        );
        let ids = reservoir_sample(0..sample.num_series() as u64, r, seed);
        let points: Vec<Vec<f64>> = ids.into_iter().map(|id| paa(sample.get(id), w)).collect();
        Self::from_points(points)
    }

    /// Number of pivots `r`.
    #[inline]
    pub fn len(&self) -> usize {
        self.coords.len() / self.dims
    }

    /// True when the set holds no pivots (cannot happen post-construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Dimensionality `w` of the pivot space.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Coordinates of pivot `id`.
    #[inline]
    pub fn get(&self, id: PivotId) -> &[f64] {
        let i = id as usize * self.dims;
        &self.coords[i..i + self.dims]
    }

    /// Squared Euclidean distance from `point` (in PAA space) to pivot `id`.
    ///
    /// Runs on the SIMD-dispatched f64 kernel; results are bit-identical
    /// across dispatch tiers, so signatures extracted on different hosts
    /// (or at build vs. query time) always agree.
    #[inline]
    pub fn sq_dist_to(&self, id: PivotId, point: &[f64]) -> f64 {
        debug_assert_eq!(point.len(), self.dims);
        climber_series::kernels::sq_dist_f64(self.get(id), point)
    }

    /// Iterator over `(id, coords)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PivotId, &[f64])> {
        self.coords
            .chunks_exact(self.dims)
            .enumerate()
            .map(|(i, c)| (i as PivotId, c))
    }

    /// Serialises the pivot set to little-endian bytes (dims, count, coords).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.coords.len() * 8);
        out.extend_from_slice(&(self.dims as u64).to_le_bytes());
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for &c in &self.coords {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    /// Deserialises a pivot set written by [`PivotSet::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < 16 {
            return Err("pivot blob too short".into());
        }
        let dims = u64::from_le_bytes(bytes[0..8].try_into().unwrap()) as usize;
        let count = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let want = 16 + dims * count * 8;
        if dims == 0 || count == 0 {
            return Err("empty pivot set".into());
        }
        if bytes.len() != want {
            return Err(format!(
                "pivot blob length {} != expected {want}",
                bytes.len()
            ));
        }
        let mut coords = Vec::with_capacity(dims * count);
        for chunk in bytes[16..].chunks_exact(8) {
            coords.push(f64::from_le_bytes(chunk.try_into().unwrap()));
        }
        Ok(Self { dims, coords })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use climber_series::gen::Domain;

    #[test]
    fn from_points_roundtrip() {
        let ps = PivotSet::from_points(vec![vec![0.0, 1.0], vec![2.0, 3.0]]);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.dims(), 2);
        assert_eq!(ps.get(0), &[0.0, 1.0]);
        assert_eq!(ps.get(1), &[2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn ragged_points_rejected() {
        PivotSet::from_points(vec![vec![0.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_set_rejected() {
        PivotSet::from_points(vec![]);
    }

    #[test]
    fn select_random_has_requested_shape() {
        let ds = Domain::RandomWalk.generate(100, 3);
        let ps = PivotSet::select_random(&ds, 16, 10, 7);
        assert_eq!(ps.len(), 10);
        assert_eq!(ps.dims(), 16);
    }

    #[test]
    fn select_random_is_deterministic() {
        let ds = Domain::Eeg.generate(50, 3);
        let a = PivotSet::select_random(&ds, 8, 5, 11);
        let b = PivotSet::select_random(&ds, 8, 5, 11);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cannot provide")]
    fn oversized_pivot_request_panics() {
        let ds = Domain::Dna.generate(3, 1);
        PivotSet::select_random(&ds, 8, 10, 0);
    }

    #[test]
    fn sq_dist_is_squared_euclidean() {
        let ps = PivotSet::from_points(vec![vec![0.0, 0.0]]);
        assert_eq!(ps.sq_dist_to(0, &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn iter_visits_all_pivots_in_order() {
        let ps = PivotSet::from_points(vec![vec![1.0], vec![2.0], vec![3.0]]);
        let ids: Vec<PivotId> = ps.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn bytes_roundtrip() {
        let ds = Domain::TexMex.generate(40, 9);
        let ps = PivotSet::select_random(&ds, 16, 8, 2);
        let back = PivotSet::from_bytes(&ps.to_bytes()).unwrap();
        assert_eq!(ps, back);
    }

    #[test]
    fn corrupt_bytes_rejected() {
        assert!(PivotSet::from_bytes(&[1, 2, 3]).is_err());
        let ps = PivotSet::from_points(vec![vec![1.0]]);
        let mut b = ps.to_bytes();
        b.pop();
        assert!(PivotSet::from_bytes(&b).is_err());
    }
}
