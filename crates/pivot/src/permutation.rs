//! Pivot permutations and permutation prefixes (§IV-A, Definition 5).
//!
//! Given a point in PAA space and a pivot set, the *pivot permutation* lists
//! every pivot id ordered by ascending distance to the point; the *Pivot
//! Permutation Prefix* (PPP) keeps only the `m` nearest. Distance ties are
//! broken by pivot id so permutations are deterministic.

use crate::pivots::{PivotId, PivotSet};

/// Full pivot permutation of `point`: all pivot ids, ascending by
/// `(distance, id)`.
pub fn pivot_permutation(pivots: &PivotSet, point: &[f64]) -> Vec<PivotId> {
    assert_eq!(
        point.len(),
        pivots.dims(),
        "point dimensionality {} != pivot space {}",
        point.len(),
        pivots.dims()
    );
    let mut order: Vec<(f64, PivotId)> = pivots
        .iter()
        .map(|(id, _)| (pivots.sq_dist_to(id, point), id))
        .collect();
    order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    order.into_iter().map(|(_, id)| id).collect()
}

/// Pivot Permutation Prefix of length `m` (Definition 5): the `m` nearest
/// pivot ids, ascending by `(distance, id)`.
///
/// Implemented with a bounded selection rather than a full sort: `r` can be
/// in the hundreds while `m` is ~10, and this function runs once per series
/// per build plus once per query.
pub fn pivot_permutation_prefix(pivots: &PivotSet, point: &[f64], m: usize) -> Vec<PivotId> {
    pivot_permutation_prefix_with(pivots, point, m, &mut Vec::with_capacity(m + 1))
}

/// [`pivot_permutation_prefix`] with a caller-provided selection buffer, so
/// bulk conversion (one call per record of the full dataset in Step 4 of
/// the index build) pays no per-record heap allocation beyond the returned
/// prefix itself. The buffer is cleared on entry; results are identical to
/// the allocating variant.
pub fn pivot_permutation_prefix_with(
    pivots: &PivotSet,
    point: &[f64],
    m: usize,
    heap: &mut Vec<(f64, PivotId)>,
) -> Vec<PivotId> {
    assert!(m > 0, "prefix length must be positive");
    assert!(
        m <= pivots.len(),
        "prefix length {m} exceeds pivot count {}",
        pivots.len()
    );
    assert_eq!(
        point.len(),
        pivots.dims(),
        "point dimensionality {} != pivot space {}",
        point.len(),
        pivots.dims()
    );
    // Bounded max-heap over (dist, id) keyed the same way as the full sort.
    heap.clear();
    heap.reserve(m + 1);
    for (id, _) in pivots.iter() {
        let d = pivots.sq_dist_to(id, point);
        if heap.len() < m {
            heap.push((d, id));
            if heap.len() == m {
                heap.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            }
            continue;
        }
        let worst = heap[m - 1];
        if d.total_cmp(&worst.0).then(id.cmp(&worst.1)).is_lt() {
            // insert in sorted position, drop the worst
            let pos =
                heap.partition_point(|&(hd, hid)| hd.total_cmp(&d).then(hid.cmp(&id)).is_lt());
            heap.insert(pos, (d, id));
            heap.pop();
        }
    }
    if heap.len() < m {
        heap.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    }
    heap.iter().map(|&(_, id)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_pivots() -> PivotSet {
        // Seven pivots on a line so distances are easy to reason about.
        PivotSet::from_points((0..7).map(|i| vec![i as f64 * 10.0]).collect())
    }

    #[test]
    fn permutation_orders_by_distance() {
        let ps = grid_pivots();
        // Point at 22: nearest pivots are 2 (d=2), 3 (d=8), 1 (d=12), ...
        let perm = pivot_permutation(&ps, &[22.0]);
        assert_eq!(perm, vec![2, 3, 1, 4, 0, 5, 6]);
    }

    #[test]
    fn prefix_is_head_of_full_permutation() {
        let ps = grid_pivots();
        let full = pivot_permutation(&ps, &[37.0]);
        for m in 1..=7 {
            let prefix = pivot_permutation_prefix(&ps, &[37.0], m);
            assert_eq!(prefix, full[..m], "m={m}");
        }
    }

    #[test]
    fn ties_broken_by_pivot_id() {
        // Point equidistant from pivots 0 and 1.
        let ps = PivotSet::from_points(vec![vec![0.0], vec![2.0], vec![10.0]]);
        let perm = pivot_permutation(&ps, &[1.0]);
        assert_eq!(perm, vec![0, 1, 2]);
    }

    #[test]
    fn prefix_on_random_points_matches_sort_reference() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let points: Vec<Vec<f64>> = (0..50)
            .map(|_| (0..4).map(|_| rng.random::<f64>() * 10.0).collect())
            .collect();
        let ps = PivotSet::from_points(points);
        for _ in 0..20 {
            let q: Vec<f64> = (0..4).map(|_| rng.random::<f64>() * 10.0).collect();
            let full = pivot_permutation(&ps, &q);
            for m in [1usize, 3, 10, 50] {
                let prefix = pivot_permutation_prefix(&ps, &q, m);
                assert_eq!(prefix, full[..m], "m={m}");
            }
        }
    }

    #[test]
    fn prefix_with_reused_buffer_matches_allocating_variant() {
        let ps = grid_pivots();
        let mut heap = Vec::new();
        for (i, m) in [(0usize, 1usize), (1, 3), (2, 7), (3, 2)] {
            let point = [i as f64 * 13.0 + 1.0];
            let with = pivot_permutation_prefix_with(&ps, &point, m, &mut heap);
            assert_eq!(with, pivot_permutation_prefix(&ps, &point, m));
        }
    }

    #[test]
    #[should_panic(expected = "prefix length")]
    fn prefix_longer_than_pivots_panics() {
        let ps = grid_pivots();
        pivot_permutation_prefix(&ps, &[0.0], 8);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn wrong_dimensionality_panics() {
        let ps = grid_pivots();
        pivot_permutation(&ps, &[0.0, 1.0]);
    }

    #[test]
    fn figure2_style_example() {
        // Paper Figure 2: point X has permutation <6,4,1,7,2,5,3> for seven
        // pivots in the plane. Reproduce the idea with 2-D pivots around X.
        let pivots = vec![
            vec![10.0, 10.0], // p1 (id 0)
            vec![40.0, 5.0],  // p2 (id 1)
            vec![60.0, 50.0], // p3 (id 2)
            vec![15.0, 25.0], // p4 (id 3)
            vec![50.0, 30.0], // p5 (id 4)
            vec![12.0, 18.0], // p6 (id 5)
            vec![30.0, 30.0], // p7 (id 6)
        ];
        let ps = PivotSet::from_points(pivots);
        let x = [14.0, 19.0]; // nearest p6 then p4 ...
        let perm = pivot_permutation(&ps, &x);
        assert_eq!(perm[0], 5, "closest must be p6 (id 5)");
        assert_eq!(perm[1], 3, "second closest must be p4 (id 3)");
        assert_eq!(perm.len(), 7);
    }
}
