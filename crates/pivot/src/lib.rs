//! # climber-pivot
//!
//! CLIMBER-FX: the feature-extraction layer of CLIMBER (§IV).
//!
//! A set of `r` *pivots* (points in PAA space) induces a Voronoi
//! fragmentation of the feature space. Every data series is represented by
//! its **Pivot Permutation Prefix** — the ids of its `m` nearest pivots —
//! in two flavours that together form the **P4 dual signature** (Def. 6):
//!
//! * rank-sensitive `P4→`: pivot ids ordered by ascending distance;
//! * rank-insensitive `P4↛`: the same ids ordered by id.
//!
//! The dual signature supports two similarity metrics designed by the paper:
//! the [`distances::overlap_distance`] (OD, Def. 7) on rank-insensitive
//! signatures, and the decay-weighted [`distances::weight_distance`] (WD,
//! Defs. 9-11) between a rank-sensitive signature and a rank-insensitive
//! centroid. [`assignment`] implements the Algorithm-1 tie-breaking rules
//! built from the two.

pub mod assignment;
pub mod decay;
pub mod distances;
pub mod permutation;
pub mod pivots;
pub mod signature;

pub use assignment::{assign_group, Assignment};
pub use decay::DecayFunction;
pub use distances::{kendall_tau, overlap_distance, spearman_footrule, weight_distance};
pub use permutation::{pivot_permutation, pivot_permutation_prefix};
pub use pivots::{PivotId, PivotSet};
pub use signature::{DualSignature, RankInsensitive, RankSensitive};
