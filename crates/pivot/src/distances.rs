//! Similarity metrics for pivot signatures.
//!
//! * [`overlap_distance`] — OD (Definition 7), the primary coarse metric on
//!   rank-insensitive signatures: `m` minus the intersection cardinality.
//! * [`weight_distance`] — WD (Definition 11), the decay-weighted tie-break
//!   metric between a rank-sensitive signature and a rank-insensitive
//!   centroid.
//! * [`spearman_footrule`] / [`kendall_tau`] — the classic rank-correlation
//!   distances the PPP literature uses (§IV-A challenge 3 explains why they
//!   do not fit the dual representation; they are provided for baselines and
//!   ablations).

use crate::decay::DecayFunction;
use crate::signature::{RankInsensitive, RankSensitive};

/// Overlap Distance (Definition 7): `OD(X, Y) = m − |P4↛_X ∩ P4↛_Y|`.
/// Lies in `[0, m]`; `m` means zero shared pivots.
///
/// # Panics
/// If the signatures have different lengths (Def. 7 requires equal `m`).
pub fn overlap_distance(a: &RankInsensitive, b: &RankInsensitive) -> usize {
    assert_eq!(
        a.len(),
        b.len(),
        "overlap distance requires equal-length signatures"
    );
    let m = a.len();
    m - intersection_size(&a.0, &b.0)
}

/// Intersection size of two sorted id slices (linear merge).
fn intersection_size(a: &[u16], b: &[u16]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut hits = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                hits += 1;
                i += 1;
                j += 1;
            }
        }
    }
    hits
}

/// Weight Distance (Definition 11) between a rank-sensitive signature and a
/// rank-insensitive centroid:
/// `WD(X, o) = TW(X) − Σ_i W(pivot_i) · 1[pivot_i ∈ P4↛_o]`.
///
/// Lower is better: the more of X's pivots present in the centroid — and the
/// nearer to the front they sit — the smaller the distance.
pub fn weight_distance(x: &RankSensitive, centroid: &RankInsensitive, decay: DecayFunction) -> f64 {
    let m = x.len();
    assert!(m > 0, "weight distance of an empty signature");
    let total = decay.total_weight(m);
    let mut captured = 0.0;
    for (idx, &pid) in x.0.iter().enumerate() {
        if centroid.contains(pid) {
            captured += decay.weight(idx + 1, m);
        }
    }
    total - captured
}

/// Spearman's footrule distance between two rank-sensitive signatures over
/// the same id universe: `Σ |rank_a(p) − rank_b(p)|`.
///
/// Ids present in only one signature are assigned the "just past the end"
/// rank `m` (the standard induced-footrule convention for top-m lists).
pub fn spearman_footrule(a: &RankSensitive, b: &RankSensitive) -> usize {
    assert_eq!(
        a.len(),
        b.len(),
        "footrule requires equal-length signatures"
    );
    let m = a.len();
    let rank_in = |sig: &RankSensitive, id: u16| -> usize {
        sig.0.iter().position(|&p| p == id).unwrap_or(m)
    };
    let mut ids: Vec<u16> = a.0.iter().chain(b.0.iter()).copied().collect();
    ids.sort_unstable();
    ids.dedup();
    ids.into_iter()
        .map(|id| {
            let ra = rank_in(a, id);
            let rb = rank_in(b, id);
            ra.abs_diff(rb)
        })
        .sum()
}

/// Kendall's τ distance (number of discordant pairs) between two
/// rank-sensitive signatures, again with absent ids ranked `m`
/// (the induced top-m Kendall distance).
pub fn kendall_tau(a: &RankSensitive, b: &RankSensitive) -> usize {
    assert_eq!(
        a.len(),
        b.len(),
        "kendall tau requires equal-length signatures"
    );
    let m = a.len();
    let rank_in = |sig: &RankSensitive, id: u16| -> usize {
        sig.0.iter().position(|&p| p == id).unwrap_or(m)
    };
    let mut ids: Vec<u16> = a.0.iter().chain(b.0.iter()).copied().collect();
    ids.sort_unstable();
    ids.dedup();
    let mut discordant = 0;
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            let (pa, pb) = (rank_in(a, ids[i]), rank_in(a, ids[j]));
            let (qa, qb) = (rank_in(b, ids[i]), rank_in(b, ids[j]));
            // Pair is discordant when the two lists order it oppositely.
            // Ties (both absent → both rank m) are never discordant.
            let ord_a = pa.cmp(&pb);
            let ord_b = qa.cmp(&qb);
            if ord_a != std::cmp::Ordering::Equal
                && ord_b != std::cmp::Ordering::Equal
                && ord_a != ord_b
            {
                discordant += 1;
            }
        }
    }
    discordant
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ri(ids: &[u16]) -> RankInsensitive {
        let mut v = ids.to_vec();
        v.sort_unstable();
        RankInsensitive(v)
    }

    #[test]
    fn paper_od_example() {
        // "assume P4↛_X = <1,3,6,8> and P4↛_Y = <2,3,4,6>, then
        //  OD(X,Y) = 4 − 2 = 2."
        let x = ri(&[1, 3, 6, 8]);
        let y = ri(&[2, 3, 4, 6]);
        assert_eq!(overlap_distance(&x, &y), 2);
    }

    #[test]
    fn od_identical_signatures_is_zero() {
        let x = ri(&[5, 9, 11]);
        assert_eq!(overlap_distance(&x, &x), 0);
    }

    #[test]
    fn od_disjoint_signatures_is_m() {
        let x = ri(&[1, 2, 3]);
        let y = ri(&[4, 5, 6]);
        assert_eq!(overlap_distance(&x, &y), 3);
    }

    #[test]
    fn od_is_symmetric() {
        let x = ri(&[1, 4, 7, 9]);
        let y = ri(&[2, 4, 9, 12]);
        assert_eq!(overlap_distance(&x, &y), overlap_distance(&y, &x));
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn od_length_mismatch_panics() {
        overlap_distance(&ri(&[1]), &ri(&[1, 2]));
    }

    #[test]
    fn example1_weight_distances() {
        // Example 1 of the paper, object Y: P4→_Y = <4,2,1>,
        // centroids o1 = <1,2,3>, o2 = <2,4,5>, exponential λ=1/2.
        // W(4)=1.0, W(2)=0.5, W(1)=0.25, TW = 1.75.
        // WD(Y,o1) = 1.75 − (W(1)+W(2)) = 1.0
        // WD(Y,o2) = 1.75 − (W(4)+W(2)) = 0.25
        let y = RankSensitive(vec![4, 2, 1]);
        let o1 = ri(&[1, 2, 3]);
        let o2 = ri(&[2, 4, 5]);
        let d = DecayFunction::DEFAULT;
        assert!((weight_distance(&y, &o1, d) - 1.0).abs() < 1e-12);
        assert!((weight_distance(&y, &o2, d) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn example1_object_z_ties() {
        // Object Z: P4→_Z = <6,2,7> ties on both centroids:
        // WD(Z,o1) = 1.75 − W(2) = 1.25 = WD(Z,o2).
        let z = RankSensitive(vec![6, 2, 7]);
        let o1 = ri(&[1, 2, 3]);
        let o2 = ri(&[2, 4, 5]);
        let d = DecayFunction::DEFAULT;
        let d1 = weight_distance(&z, &o1, d);
        let d2 = weight_distance(&z, &o2, d);
        assert!((d1 - 1.25).abs() < 1e-12);
        assert_eq!(d1, d2);
    }

    #[test]
    fn wd_full_overlap_is_zero() {
        let x = RankSensitive(vec![3, 1, 2]);
        let c = ri(&[1, 2, 3]);
        assert!(weight_distance(&x, &c, DecayFunction::DEFAULT).abs() < 1e-12);
    }

    #[test]
    fn wd_no_overlap_is_total_weight() {
        let x = RankSensitive(vec![7, 8, 9]);
        let c = ri(&[1, 2, 3]);
        let d = DecayFunction::DEFAULT;
        assert!((weight_distance(&x, &c, d) - d.total_weight(3)).abs() < 1e-12);
    }

    #[test]
    fn wd_prefers_front_matches() {
        // Matching the FIRST pivot beats matching the LAST.
        let front = RankSensitive(vec![1, 8, 9]);
        let back = RankSensitive(vec![8, 9, 1]);
        let c = ri(&[1, 5, 6]);
        let d = DecayFunction::DEFAULT;
        assert!(weight_distance(&front, &c, d) < weight_distance(&back, &c, d));
    }

    #[test]
    fn footrule_identical_is_zero() {
        let a = RankSensitive(vec![1, 2, 3]);
        assert_eq!(spearman_footrule(&a, &a), 0);
    }

    #[test]
    fn footrule_swap_costs_two() {
        let a = RankSensitive(vec![1, 2, 3]);
        let b = RankSensitive(vec![2, 1, 3]);
        assert_eq!(spearman_footrule(&a, &b), 2);
    }

    #[test]
    fn footrule_disjoint_lists() {
        // Each of the 6 ids moves |rank − m| in one direction:
        // ranks 0,1,2 vs absent (3) → 3+2+1 per list = 12 total.
        let a = RankSensitive(vec![1, 2, 3]);
        let b = RankSensitive(vec![4, 5, 6]);
        assert_eq!(spearman_footrule(&a, &b), 12);
    }

    #[test]
    fn kendall_identical_is_zero() {
        let a = RankSensitive(vec![4, 2, 9]);
        assert_eq!(kendall_tau(&a, &a), 0);
    }

    #[test]
    fn kendall_adjacent_swap_is_one() {
        let a = RankSensitive(vec![1, 2, 3]);
        let b = RankSensitive(vec![2, 1, 3]);
        assert_eq!(kendall_tau(&a, &b), 1);
    }

    #[test]
    fn kendall_reversal_is_max() {
        let a = RankSensitive(vec![1, 2, 3]);
        let b = RankSensitive(vec![3, 2, 1]);
        assert_eq!(kendall_tau(&a, &b), 3); // C(3,2) pairs all discordant
    }

    #[test]
    fn rank_insensitive_pairs_have_zero_od_but_nonzero_footrule() {
        // The motivating case for the dual representation: permuted prefixes
        // are identical under OD but different under rank metrics.
        let x = RankSensitive(vec![1, 4, 2]);
        let y = RankSensitive(vec![4, 1, 2]);
        assert_eq!(
            overlap_distance(&x.to_insensitive(), &y.to_insensitive()),
            0
        );
        assert!(spearman_footrule(&x, &y) > 0);
        assert!(kendall_tau(&x, &y) > 0);
    }
}
