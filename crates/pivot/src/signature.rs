//! The P4 dual signature (Definition 6).
//!
//! `P4→` (rank-sensitive) is the Pivot Permutation Prefix of a series' PAA
//! signature; `P4↛` (rank-insensitive) is the same id set in lexicographic
//! (ascending id) order. Figure 4 of the paper: two nearby points X and Y
//! may have `P4→` `<1,4,2>` vs `<4,1,2>` yet share `P4↛` `<1,2,4>` — the
//! insensitive form gives the coarse (group) granularity, the sensitive form
//! the fine (partition) granularity.

use crate::permutation::{pivot_permutation_prefix, pivot_permutation_prefix_with};
use crate::pivots::{PivotId, PivotSet};
use climber_repr::paa::{paa, paa_into};

/// Rank-sensitive signature `P4→`: pivot ids ascending by distance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RankSensitive(pub Vec<PivotId>);

/// Rank-insensitive signature `P4↛`: the same ids ascending by id.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RankInsensitive(pub Vec<PivotId>);

impl RankSensitive {
    /// Prefix length `m`.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the signature is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Derives the rank-insensitive form (Definition 6's
    /// `LexicographicalOrder(P4→)`).
    pub fn to_insensitive(&self) -> RankInsensitive {
        let mut ids = self.0.clone();
        ids.sort_unstable();
        RankInsensitive(ids)
    }
}

impl RankInsensitive {
    /// Prefix length `m`.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the signature is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// True when `id` is one of the signature's pivots (binary search; the
    /// ids are sorted by construction).
    #[inline]
    pub fn contains(&self, id: PivotId) -> bool {
        self.0.binary_search(&id).is_ok()
    }
}

/// Reusable scratch buffers for bulk signature extraction: the PAA arena
/// and the bounded pivot-selection buffer that [`DualSignature::extract`]
/// would otherwise allocate per call. One scratch per worker thread turns
/// the per-record conversion cost of an index build into pure compute.
#[derive(Debug, Default)]
pub struct SignatureScratch {
    paa: Vec<f64>,
    heap: Vec<(f64, PivotId)>,
}

impl SignatureScratch {
    /// Fresh, empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The P4 dual signature of one data series (Definition 6).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DualSignature {
    /// Rank-sensitive `P4→`.
    pub sensitive: RankSensitive,
    /// Rank-insensitive `P4↛`.
    pub insensitive: RankInsensitive,
}

impl DualSignature {
    /// Builds the dual signature from an explicit rank-sensitive prefix.
    pub fn from_sensitive(sensitive: RankSensitive) -> Self {
        let insensitive = sensitive.to_insensitive();
        Self {
            sensitive,
            insensitive,
        }
    }

    /// Extracts the dual signature of a raw series: PAA with `w` segments,
    /// then the `m`-nearest-pivot prefix (the full CLIMBER-FX pipeline of
    /// §IV-B applied to one object).
    pub fn extract(values: &[f32], pivots: &PivotSet, w: usize, m: usize) -> Self {
        let p = paa(values, w);
        Self::extract_from_paa(&p, pivots, m)
    }

    /// Extracts the dual signature from a precomputed PAA signature.
    pub fn extract_from_paa(paa_sig: &[f64], pivots: &PivotSet, m: usize) -> Self {
        let prefix = pivot_permutation_prefix(pivots, paa_sig, m);
        Self::from_sensitive(RankSensitive(prefix))
    }

    /// [`DualSignature::extract`] with caller-provided [`SignatureScratch`]
    /// buffers, avoiding the per-call PAA and selection allocations. Bulk
    /// conversion paths (the Step-4 full-dataset pass of the index build)
    /// hold one scratch per worker thread and call this per record; the
    /// result is identical to [`extract`](Self::extract).
    pub fn extract_with(
        values: &[f32],
        pivots: &PivotSet,
        w: usize,
        m: usize,
        scratch: &mut SignatureScratch,
    ) -> Self {
        scratch.paa.clear();
        paa_into(values, w, &mut scratch.paa);
        let prefix = pivot_permutation_prefix_with(pivots, &scratch.paa, m, &mut scratch.heap);
        Self::from_sensitive(RankSensitive(prefix))
    }

    /// Extracts the dual signatures of a whole run of series, sharing one
    /// [`SignatureScratch`] across every record — the batch conversion API
    /// worker threads use over their record blocks. Output order matches
    /// input order; each element equals [`extract`](Self::extract) of the
    /// corresponding series.
    pub fn extract_batch<'a, I>(series: I, pivots: &PivotSet, w: usize, m: usize) -> Vec<Self>
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let mut scratch = SignatureScratch::new();
        series
            .into_iter()
            .map(|s| Self::extract_with(s, pivots, w, m, &mut scratch))
            .collect()
    }

    /// Prefix length `m`.
    pub fn len(&self) -> usize {
        self.sensitive.len()
    }

    /// True when the signature is empty.
    pub fn is_empty(&self) -> bool {
        self.sensitive.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_example() {
        // Figure 4: P4→_X = <1,4,2>, P4→_Y = <4,1,2>; both share
        // P4↛ = <1,2,4>. (Pivot "ids" in the figure are 1-based labels;
        // the code is 0-based but the structure is identical.)
        let x = DualSignature::from_sensitive(RankSensitive(vec![1, 4, 2]));
        let y = DualSignature::from_sensitive(RankSensitive(vec![4, 1, 2]));
        assert_ne!(x.sensitive, y.sensitive);
        assert_eq!(x.insensitive, y.insensitive);
        assert_eq!(x.insensitive.0, vec![1, 2, 4]);
    }

    #[test]
    fn insensitive_is_sorted() {
        let s = DualSignature::from_sensitive(RankSensitive(vec![9, 3, 7, 1]));
        assert_eq!(s.insensitive.0, vec![1, 3, 7, 9]);
    }

    #[test]
    fn contains_uses_sorted_ids() {
        let s = DualSignature::from_sensitive(RankSensitive(vec![5, 2, 8]));
        assert!(s.insensitive.contains(5));
        assert!(s.insensitive.contains(2));
        assert!(!s.insensitive.contains(3));
    }

    #[test]
    fn extract_pipeline_end_to_end() {
        // Pivots on a line in 2-segment PAA space; series chosen so its PAA
        // is [0, 10] — nearest pivot must be the one at [0,10].
        let pivots = PivotSet::from_points(vec![
            vec![0.0, 10.0],
            vec![50.0, 50.0],
            vec![0.0, 0.0],
            vec![10.0, 10.0],
        ]);
        let series: Vec<f32> = vec![0.0, 0.0, 10.0, 10.0];
        let sig = DualSignature::extract(&series, &pivots, 2, 3);
        assert_eq!(sig.sensitive.0[0], 0, "nearest pivot is [0,10]");
        assert_eq!(sig.len(), 3);
        // insensitive = sorted sensitive
        let mut sorted = sig.sensitive.0.clone();
        sorted.sort_unstable();
        assert_eq!(sig.insensitive.0, sorted);
    }

    #[test]
    fn scratch_extraction_matches_allocating_path() {
        let pivots = PivotSet::from_points((0..30).map(|i| vec![i as f64, -(i as f64)]).collect());
        let series: Vec<Vec<f32>> = (0..25)
            .map(|i| (0..8).map(|j| ((i * 7 + j) % 11) as f32 - 5.0).collect())
            .collect();
        let mut scratch = SignatureScratch::new();
        for s in &series {
            let with = DualSignature::extract_with(s, &pivots, 2, 5, &mut scratch);
            assert_eq!(with, DualSignature::extract(s, &pivots, 2, 5));
        }
        let batch = DualSignature::extract_batch(series.iter().map(Vec::as_slice), &pivots, 2, 5);
        assert_eq!(batch.len(), series.len());
        for (s, sig) in series.iter().zip(&batch) {
            assert_eq!(sig, &DualSignature::extract(s, &pivots, 2, 5));
        }
    }

    #[test]
    fn duplicate_free_prefix() {
        let pivots = PivotSet::from_points((0..20).map(|i| vec![i as f64]).collect());
        let sig = DualSignature::extract_from_paa(&[7.3], &pivots, 10);
        let mut ids = sig.sensitive.0.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10, "prefix must not repeat pivots");
    }
}
