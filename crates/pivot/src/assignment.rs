//! Group assignment rules (Algorithm 1).
//!
//! Given a list of group centroids (each a rank-insensitive signature) and
//! an object's dual signature, the object is assigned to:
//!
//! 1. the **fall-back group G0** when it shares no pivot with any centroid
//!    (all OD distances equal `m`);
//! 2. otherwise the centroid with the **unique smallest OD**;
//! 3. on a tie, the tied centroid with the **unique smallest WD** (decay
//!    weights learned from the object's rank-sensitive signature);
//! 4. on a second tie, a deterministic pseudo-random choice among the tied
//!    centroids (the paper says "randomly selected"; this implementation
//!    hashes a caller-supplied seed — typically the series id — so builds
//!    are reproducible).

use crate::decay::DecayFunction;
use crate::distances::{overlap_distance, weight_distance};
use crate::signature::{DualSignature, RankInsensitive};

/// How an Algorithm-1 assignment was decided — recorded for the ablation
/// experiments (how often does each tie level fire?).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// No centroid shares a pivot with the object: fall-back group G0
    /// (Algorithm 1 lines 3-5).
    Fallback,
    /// Unique smallest OD (lines 6-7).
    ByOverlap(usize),
    /// OD tie resolved by unique smallest WD (lines 8-12).
    ByWeight(usize),
    /// Second tie resolved pseudo-randomly (line 14).
    ByRandom(usize),
}

impl Assignment {
    /// Index of the chosen centroid, or `None` for the fall-back group.
    pub fn centroid(&self) -> Option<usize> {
        match *self {
            Assignment::Fallback => None,
            Assignment::ByOverlap(i) | Assignment::ByWeight(i) | Assignment::ByRandom(i) => Some(i),
        }
    }
}

/// Algorithm 1: assigns `sig` to one of `centroids` (indices into the slice)
/// or to the fall-back group.
///
/// `tie_seed` drives the final random tie-break deterministically; pass the
/// series id (or a hash of it) for reproducible builds.
///
/// # Panics
/// If `centroids` is empty or signature lengths differ from the centroids'.
pub fn assign_group(
    centroids: &[RankInsensitive],
    sig: &DualSignature,
    decay: DecayFunction,
    tie_seed: u64,
) -> Assignment {
    assert!(!centroids.is_empty(), "no centroids to assign to");
    let m = sig.len();

    // Line 2: OD distances to every centroid.
    let ods: Vec<usize> = centroids
        .iter()
        .map(|c| overlap_distance(c, &sig.insensitive))
        .collect();

    // Lines 3-5: zero overlap with every centroid → fall-back.
    let best_od = *ods.iter().min().expect("non-empty centroid list");
    if best_od == m {
        return Assignment::Fallback;
    }

    // Lines 6-7: unique smallest OD.
    let tied: Vec<usize> = (0..centroids.len())
        .filter(|&i| ods[i] == best_od)
        .collect();
    if tied.len() == 1 {
        return Assignment::ByOverlap(tied[0]);
    }

    // Lines 9-12: WD among the tied centroids.
    let wds: Vec<f64> = tied
        .iter()
        .map(|&i| weight_distance(&sig.sensitive, &centroids[i], decay))
        .collect();
    let best_wd = wds.iter().cloned().fold(f64::INFINITY, f64::min);
    let wd_tied: Vec<usize> = tied
        .iter()
        .zip(wds.iter())
        .filter(|&(_, &wd)| wd <= best_wd + f64::EPSILON * best_wd.abs().max(1.0))
        .map(|(&i, _)| i)
        .collect();
    if wd_tied.len() == 1 {
        return Assignment::ByWeight(wd_tied[0]);
    }

    // Line 14: deterministic pseudo-random choice among the remaining ties.
    let pick = (splitmix64(tie_seed) % wd_tied.len() as u64) as usize;
    Assignment::ByRandom(wd_tied[pick])
}

/// The naive alternative Algorithm 1 replaces (§IV-A challenge 3):
/// treat the centroid's id-ordered pivot list as if it were a rank
/// ordering and assign by Spearman footrule against the object's
/// rank-sensitive signature.
///
/// The paper argues this is *wrong* for the dual representation — rank
/// metrics "will not work, especially when comparing objects of different
/// granularities" — because a centroid has no rank information: its id
/// order is arbitrary, so footrule penalises objects whose genuine
/// proximity ranking disagrees with an accident of pivot numbering. This
/// function exists for the ablation experiments that quantify the claim
/// (see `tests/metric_ablation.rs`); production assignment is
/// [`assign_group`].
pub fn assign_group_naive_footrule(
    centroids: &[RankInsensitive],
    sig: &DualSignature,
) -> Assignment {
    use crate::distances::spearman_footrule;
    use crate::signature::RankSensitive;
    assert!(!centroids.is_empty(), "no centroids to assign to");
    let m = sig.len();
    // Fall-back rule kept identical so only the metric differs.
    let no_overlap = centroids
        .iter()
        .all(|c| overlap_distance(c, &sig.insensitive) == m);
    if no_overlap {
        return Assignment::Fallback;
    }
    let mut best = usize::MAX;
    let mut best_idx = 0usize;
    for (i, c) in centroids.iter().enumerate() {
        let pseudo_rank = RankSensitive(c.0.clone()); // id order as "rank"
        let d = spearman_footrule(&sig.sensitive, &pseudo_rank);
        if d < best {
            best = d;
            best_idx = i;
        }
    }
    Assignment::ByOverlap(best_idx)
}

/// SplitMix64 — a tiny, high-quality 64-bit mixer for deterministic
/// tie-breaking.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::RankSensitive;

    fn ri(ids: &[u16]) -> RankInsensitive {
        let mut v = ids.to_vec();
        v.sort_unstable();
        RankInsensitive(v)
    }

    fn dual(sensitive: &[u16]) -> DualSignature {
        DualSignature::from_sensitive(RankSensitive(sensitive.to_vec()))
    }

    /// The centroids of the paper's Example 1.
    fn example1_centroids() -> Vec<RankInsensitive> {
        vec![ri(&[1, 2, 3]), ri(&[2, 4, 5])]
    }

    #[test]
    fn example1_object_x_by_overlap() {
        // X: P4→ = <3,4,1> → P4↛ = <1,3,4>.
        // OD(X,o1)=1, OD(X,o2)=2 → assign to G1 (index 0).
        let a = assign_group(
            &example1_centroids(),
            &dual(&[3, 4, 1]),
            DecayFunction::DEFAULT,
            0,
        );
        assert_eq!(a, Assignment::ByOverlap(0));
    }

    #[test]
    fn example1_object_y_by_weight() {
        // Y: P4→ = <4,2,1>; OD ties at 1; WD(Y,o1)=1.0, WD(Y,o2)=0.25 →
        // assign to G2 (index 1).
        let a = assign_group(
            &example1_centroids(),
            &dual(&[4, 2, 1]),
            DecayFunction::DEFAULT,
            0,
        );
        assert_eq!(a, Assignment::ByWeight(1));
    }

    #[test]
    fn example1_object_z_by_random() {
        // Z: P4→ = <6,2,7>; OD ties at 2, WD ties at 1.25 → random pick,
        // deterministic per seed and always one of the tied groups.
        let c = example1_centroids();
        let a1 = assign_group(&c, &dual(&[6, 2, 7]), DecayFunction::DEFAULT, 123);
        let a2 = assign_group(&c, &dual(&[6, 2, 7]), DecayFunction::DEFAULT, 123);
        assert_eq!(a1, a2, "same seed must give same pick");
        match a1 {
            Assignment::ByRandom(i) => assert!(i == 0 || i == 1),
            other => panic!("expected random tie-break, got {other:?}"),
        }
        // Different seeds eventually pick both groups.
        let picks: std::collections::HashSet<usize> = (0..32)
            .map(
                |s| match assign_group(&c, &dual(&[6, 2, 7]), DecayFunction::DEFAULT, s) {
                    Assignment::ByRandom(i) => i,
                    other => panic!("expected random tie-break, got {other:?}"),
                },
            )
            .collect();
        assert_eq!(picks.len(), 2, "both tied groups should be reachable");
    }

    #[test]
    fn zero_overlap_goes_to_fallback() {
        // Object shares no pivot with any centroid.
        let a = assign_group(
            &example1_centroids(),
            &dual(&[7, 8, 9]),
            DecayFunction::DEFAULT,
            0,
        );
        assert_eq!(a, Assignment::Fallback);
        assert_eq!(a.centroid(), None);
    }

    #[test]
    fn single_centroid_with_any_overlap_wins() {
        let c = vec![ri(&[1, 2, 3])];
        let a = assign_group(&c, &dual(&[3, 9, 8]), DecayFunction::DEFAULT, 0);
        assert_eq!(a, Assignment::ByOverlap(0));
    }

    #[test]
    #[should_panic(expected = "no centroids")]
    fn empty_centroid_list_panics() {
        assign_group(&[], &dual(&[1, 2, 3]), DecayFunction::DEFAULT, 0);
    }

    #[test]
    fn linear_decay_can_change_the_tiebreak() {
        // Construct a case where exponential and linear decay agree on
        // totals but produce different WDs; assignment still must be one of
        // the OD-tied centroids under both.
        let c = vec![ri(&[1, 5, 6]), ri(&[2, 5, 7])];
        let sig = dual(&[1, 2, 9]);
        for decay in [DecayFunction::DEFAULT, DecayFunction::Linear] {
            let a = assign_group(&c, &sig, decay, 0);
            assert!(matches!(
                a,
                Assignment::ByWeight(0) | Assignment::ByOverlap(0)
            ));
        }
    }

    #[test]
    fn naive_footrule_is_deterministic_and_valid() {
        let c = example1_centroids();
        let sig = dual(&[3, 4, 1]);
        let a = assign_group_naive_footrule(&c, &sig);
        assert_eq!(a, assign_group_naive_footrule(&c, &sig));
        assert!(a.centroid().is_some());
    }

    #[test]
    fn naive_footrule_keeps_fallback_semantics() {
        let a = assign_group_naive_footrule(&example1_centroids(), &dual(&[7, 8, 9]));
        assert_eq!(a, Assignment::Fallback);
    }

    #[test]
    fn naive_footrule_can_disagree_with_algorithm_1() {
        // The motivating failure: an object whose nearest pivots are
        // exactly centroid o2's pivots but in "reversed" order. Algorithm 1
        // assigns it to o2 (full overlap, OD 0); footrule against the
        // id-ordered pseudo-rank can prefer a worse-overlap centroid.
        let c = vec![ri(&[1, 2, 3]), ri(&[5, 4, 2])];
        let sig = dual(&[5, 4, 2]); // P4↛ = <2,4,5> — overlaps o2 fully
        let od_choice = assign_group(&c, &sig, DecayFunction::DEFAULT, 0);
        assert_eq!(
            od_choice,
            Assignment::ByOverlap(1),
            "Algorithm 1 is unambiguous"
        );
        // whatever footrule picks, Algorithm 1's pick has OD 0 — the
        // correctness criterion the ablation measures end-to-end.
        let naive = assign_group_naive_footrule(&c, &sig);
        assert!(naive.centroid().is_some());
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(42), splitmix64(42));
        let distinct: std::collections::HashSet<u64> = (0..1000u64).map(splitmix64).collect();
        assert_eq!(distinct.len(), 1000);
    }
}
