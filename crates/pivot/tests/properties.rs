//! Property-based tests for the pivot-signature layer.

use climber_pivot::assignment::{assign_group, Assignment};
use climber_pivot::decay::DecayFunction;
use climber_pivot::distances::{kendall_tau, overlap_distance, spearman_footrule, weight_distance};
use climber_pivot::permutation::{pivot_permutation, pivot_permutation_prefix};
use climber_pivot::pivots::PivotSet;
use climber_pivot::signature::{DualSignature, RankInsensitive, RankSensitive};
use proptest::prelude::*;

/// Strategy: a rank-sensitive signature of length `m` over pivot ids < 30
/// (distinct ids, arbitrary order).
fn sensitive_sig(m: usize) -> impl Strategy<Value = RankSensitive> {
    Just(()).prop_perturb(move |_, mut rng| {
        use proptest::test_runner::RngAlgorithm;
        let _ = RngAlgorithm::ChaCha; // silence unused import lint paths
        let mut ids: Vec<u16> = (0..30).collect();
        // Fisher-Yates using proptest's rng
        for i in (1..ids.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            ids.swap(i, j);
        }
        ids.truncate(m);
        RankSensitive(ids)
    })
}

fn insensitive_sig(m: usize) -> impl Strategy<Value = RankInsensitive> {
    sensitive_sig(m).prop_map(|s| s.to_insensitive())
}

proptest! {
    #[test]
    fn od_range_and_symmetry(a in insensitive_sig(8), b in insensitive_sig(8)) {
        let d1 = overlap_distance(&a, &b);
        let d2 = overlap_distance(&b, &a);
        prop_assert_eq!(d1, d2);
        prop_assert!(d1 <= 8);
    }

    #[test]
    fn od_identity(a in insensitive_sig(6)) {
        prop_assert_eq!(overlap_distance(&a, &a), 0);
    }

    #[test]
    fn od_triangle_inequality(
        a in insensitive_sig(8),
        b in insensitive_sig(8),
        c in insensitive_sig(8),
    ) {
        // OD is a set-difference metric: OD(a,c) <= OD(a,b) + OD(b,c).
        let ac = overlap_distance(&a, &c);
        let ab = overlap_distance(&a, &b);
        let bc = overlap_distance(&b, &c);
        prop_assert!(ac <= ab + bc, "ac={ac} ab={ab} bc={bc}");
    }

    #[test]
    fn wd_lies_between_zero_and_total_weight(
        x in sensitive_sig(8),
        c in insensitive_sig(8),
    ) {
        for decay in [DecayFunction::DEFAULT, DecayFunction::Linear] {
            let wd = weight_distance(&x, &c, decay);
            let tw = decay.total_weight(8);
            prop_assert!(wd >= -1e-12 && wd <= tw + 1e-12, "wd={wd} tw={tw}");
        }
    }

    #[test]
    fn wd_zero_iff_full_overlap(x in sensitive_sig(6)) {
        let c = x.to_insensitive();
        let wd = weight_distance(&x, &c, DecayFunction::DEFAULT);
        prop_assert!(wd.abs() < 1e-12);
    }

    #[test]
    fn wd_consistent_with_od_extremes(
        x in sensitive_sig(8),
        c in insensitive_sig(8),
    ) {
        // OD = m (no shared pivots) ⇔ WD = TW; OD = 0 ⇔ WD = 0.
        let od = overlap_distance(&x.to_insensitive(), &c);
        let wd = weight_distance(&x, &c, DecayFunction::DEFAULT);
        let tw = DecayFunction::DEFAULT.total_weight(8);
        if od == 8 {
            prop_assert!((wd - tw).abs() < 1e-12);
        }
        if od == 0 {
            prop_assert!(wd.abs() < 1e-12);
        }
    }

    #[test]
    fn footrule_and_kendall_are_symmetric_metetrics(
        a in sensitive_sig(6),
        b in sensitive_sig(6),
    ) {
        prop_assert_eq!(spearman_footrule(&a, &b), spearman_footrule(&b, &a));
        prop_assert_eq!(kendall_tau(&a, &b), kendall_tau(&b, &a));
        prop_assert_eq!(spearman_footrule(&a, &a), 0);
        prop_assert_eq!(kendall_tau(&a, &a), 0);
    }

    #[test]
    fn diaconis_graham_inequality(a in sensitive_sig(6), b in sensitive_sig(6)) {
        // K(a,b) <= F(a,b) <= 2 K(a,b)  (Diaconis-Graham), which also holds
        // for the induced top-m versions used here.
        let f = spearman_footrule(&a, &b);
        let k = kendall_tau(&a, &b);
        prop_assert!(k <= f, "K={k} F={f}");
        prop_assert!(f <= 2 * k, "K={k} F={f}");
    }

    #[test]
    fn assignment_is_deterministic_and_valid(
        x in sensitive_sig(6),
        c1 in insensitive_sig(6),
        c2 in insensitive_sig(6),
        c3 in insensitive_sig(6),
        seed in any::<u64>(),
    ) {
        let cs = vec![c1, c2, c3];
        let sig = DualSignature::from_sensitive(x);
        let a = assign_group(&cs, &sig, DecayFunction::DEFAULT, seed);
        let b = assign_group(&cs, &sig, DecayFunction::DEFAULT, seed);
        prop_assert_eq!(a, b);
        if let Some(i) = a.centroid() {
            prop_assert!(i < cs.len());
            // The chosen centroid must achieve the minimum OD.
            let od_min = cs
                .iter()
                .map(|c| overlap_distance(c, &sig.insensitive))
                .min()
                .unwrap();
            prop_assert_eq!(overlap_distance(&cs[i], &sig.insensitive), od_min);
        } else {
            // Fallback only fires when nothing overlaps.
            for c in &cs {
                prop_assert_eq!(overlap_distance(c, &sig.insensitive), 6);
            }
        }
    }

    #[test]
    fn fallback_matches_definition(x in sensitive_sig(5), c in insensitive_sig(5)) {
        let sig = DualSignature::from_sensitive(x);
        let a = assign_group(std::slice::from_ref(&c), &sig, DecayFunction::DEFAULT, 0);
        let od = overlap_distance(&c, &sig.insensitive);
        if od == 5 {
            prop_assert_eq!(a, Assignment::Fallback);
        } else {
            prop_assert_eq!(a, Assignment::ByOverlap(0));
        }
    }

    #[test]
    fn prefix_matches_full_permutation_head(
        coords in prop::collection::vec(
            prop::collection::vec(-10.0f64..10.0, 3),
            5..40,
        ),
        q in prop::collection::vec(-10.0f64..10.0, 3),
        m_frac in 0.1f64..1.0,
    ) {
        let ps = PivotSet::from_points(coords);
        let m = ((ps.len() as f64 * m_frac) as usize).clamp(1, ps.len());
        let full = pivot_permutation(&ps, &q);
        let prefix = pivot_permutation_prefix(&ps, &q, m);
        prop_assert_eq!(&prefix[..], &full[..m]);
    }

    #[test]
    fn dual_signature_invariants(
        coords in prop::collection::vec(
            prop::collection::vec(-10.0f64..10.0, 4),
            12..30,
        ),
        q in prop::collection::vec(-10.0f64..10.0, 4),
    ) {
        let ps = PivotSet::from_points(coords);
        let sig = DualSignature::extract_from_paa(&q, &ps, 8);
        // insensitive is the sorted sensitive
        let mut sorted = sig.sensitive.0.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&sig.insensitive.0, &sorted);
        // no duplicates
        let mut dedup = sorted.clone();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), 8);
        // first sensitive pivot is a true nearest pivot
        let d0 = ps.sq_dist_to(sig.sensitive.0[0], &q);
        for (id, _) in ps.iter() {
            prop_assert!(d0 <= ps.sq_dist_to(id, &q) + 1e-12);
        }
    }
}
